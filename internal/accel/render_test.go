package accel

import (
	"bytes"
	"strings"
	"testing"

	"autohet/internal/xbar"
)

func TestRenderOccupancy(t *testing.T) {
	m := flatModel(t,
		[3]int{1, 16, 64}, // 2 slots
		[3]int{1, 16, 16}, // 1 slot
		[3]int{1, 32, 20}, // 1 slot
	)
	p, err := BuildPlan(cfg(), m, Homogeneous(3, xbar.Square(32)), true)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.RenderOccupancy(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// One occupied tile after sharing, holding all three layers (a, b, c).
	if !strings.Contains(out, "1 occupied tiles") {
		t.Fatalf("render:\n%s", out)
	}
	for _, glyph := range []string{"a", "b", "c", "(shared)"} {
		if !strings.Contains(out, glyph) {
			t.Fatalf("render missing %q:\n%s", glyph, out)
		}
	}
}

func TestRenderShowsEmptySlots(t *testing.T) {
	m := flatModel(t, [3]int{1, 16, 16}) // 1 of 4 slots
	p, err := BuildPlan(cfg(), m, Homogeneous(1, xbar.Square(32)), false)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.RenderOccupancy(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "[a...]") {
		t.Fatalf("render:\n%s", buf.String())
	}
}

func TestLayerGlyphWraps(t *testing.T) {
	if layerGlyph(0) != 'a' || layerGlyph(25) != 'z' || layerGlyph(26) != 'A' {
		t.Fatal("glyph mapping wrong")
	}
	if layerGlyph(52) != 'a' {
		t.Fatal("glyph must wrap after 52 layers")
	}
}

func TestOccupancySummary(t *testing.T) {
	m := flatModel(t,
		[3]int{1, 16, 64},
		[3]int{1, 16, 16},
	)
	p, err := BuildPlan(cfg(), m, Homogeneous(2, xbar.Square(32)), false)
	if err != nil {
		t.Fatal(err)
	}
	s := p.OccupancySummary()
	// Two tiles: one with 2/4 used, one with 1/4.
	if !strings.Contains(s, "2/4×1") || !strings.Contains(s, "1/4×1") {
		t.Fatalf("summary = %q", s)
	}
}
