// Package noc models the bank's on-chip interconnect as a 2-D mesh of
// tiles with dimension-ordered (XY) routing. The base simulator prices
// inter-tile traffic with a flat per-byte bus constant (the paper's GC
// "signals tiles through the bus", §3.1); the mesh model makes that cost
// placement-dependent: a layer whose crossbars are scattered across the
// bank pays more hops than one packed into adjacent tiles, which is an
// additional (and measurable) benefit of the tile-shared scheme.
package noc

import (
	"fmt"
	"math"
)

// Mesh is a W×W grid of tile routers. Tile IDs map row-major onto
// coordinates: tile t sits at (t mod W, t div W).
type Mesh struct {
	Width int
	// HopLatencyNS is one router+link traversal.
	HopLatencyNS float64
	// HopEnergyPJPerByte prices one byte over one hop.
	HopEnergyPJPerByte float64
	// LinkBytesPerNS is the link bandwidth used to serialize bulk
	// transfers (TransferCost). Non-positive means DefaultLinkBytesPerNS.
	LinkBytesPerNS float64
}

// Default mesh constants: a 256-wide mesh holds the paper's
// 256×256 = 65,536-tile bank (hw.Config.TilesPerBank); hop costs follow
// on-chip-network literature (~1 ns, ~0.05 pJ/byte per hop at edge scales;
// 32 B/ns ≈ a 256-bit link at 1 GHz).
const (
	DefaultHopLatencyNS   = 1.0
	DefaultHopEnergy      = 0.05
	DefaultLinkBytesPerNS = 32.0
)

// NewMesh returns a W×W mesh with default hop costs.
func NewMesh(width int) (*Mesh, error) {
	if width <= 0 {
		return nil, fmt.Errorf("noc: mesh width %d", width)
	}
	return &Mesh{
		Width:              width,
		HopLatencyNS:       DefaultHopLatencyNS,
		HopEnergyPJPerByte: DefaultHopEnergy,
		LinkBytesPerNS:     DefaultLinkBytesPerNS,
	}, nil
}

// WidthFor returns the smallest mesh width whose W×W grid holds tiles
// routers: ceil(sqrt(tiles)), at least 1. Deriving the width from the
// bank's tile capacity keeps the mesh consistent with hw.Config.TilesPerBank
// instead of hardcoding the default bank's 256.
func WidthFor(tiles int) int {
	if tiles <= 1 {
		return 1
	}
	w := int(math.Ceil(math.Sqrt(float64(tiles))))
	for w*w < tiles { // guard against float rounding on huge banks
		w++
	}
	return w
}

// NewMeshFor returns the smallest square mesh covering a bank of the given
// tile capacity, with default hop costs.
func NewMeshFor(tiles int) (*Mesh, error) {
	if tiles <= 0 {
		return nil, fmt.Errorf("noc: bank capacity %d tiles", tiles)
	}
	return NewMesh(WidthFor(tiles))
}

// Coord returns tile t's mesh coordinates.
func (m *Mesh) Coord(t int) (x, y int, err error) {
	if t < 0 || t >= m.Width*m.Width {
		return 0, 0, fmt.Errorf("noc: tile %d outside %dx%d mesh", t, m.Width, m.Width)
	}
	return t % m.Width, t / m.Width, nil
}

// Hops returns the XY-routed hop count between tiles a and b.
func (m *Mesh) Hops(a, b int) (int, error) {
	ax, ay, err := m.Coord(a)
	if err != nil {
		return 0, err
	}
	bx, by, err := m.Coord(b)
	if err != nil {
		return 0, err
	}
	return abs(ax-bx) + abs(ay-by), nil
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// GatherCost prices collecting bytesPerTile from every tile in tileIDs to
// the gather root (the lowest tile ID): total transfer energy in pJ and the
// critical-path latency in ns (tiles transmit concurrently; the farthest
// tile bounds latency). A single tile costs nothing.
func (m *Mesh) GatherCost(tileIDs []int, bytesPerTile float64) (energyPJ, latencyNS float64, err error) {
	if len(tileIDs) <= 1 {
		return 0, 0, nil
	}
	root := tileIDs[0]
	for _, t := range tileIDs[1:] {
		if t < root {
			root = t
		}
	}
	maxHops := 0
	for _, t := range tileIDs {
		if t == root {
			continue
		}
		h, err := m.Hops(t, root)
		if err != nil {
			return 0, 0, err
		}
		energyPJ += float64(h) * bytesPerTile * m.HopEnergyPJPerByte
		if h > maxHops {
			maxHops = h
		}
	}
	return energyPJ, float64(maxHops) * m.HopLatencyNS, nil
}

// ScatterCost prices broadcasting bytes from the root to every tile — the
// input-distribution phase. By symmetry it equals GatherCost.
func (m *Mesh) ScatterCost(tileIDs []int, bytesPerTile float64) (energyPJ, latencyNS float64, err error) {
	return m.GatherCost(tileIDs, bytesPerTile)
}

// TransferCost prices a bulk point-to-point transfer of bytes from tile a
// to tile b: wormhole-style latency (one hop traversal per router plus
// serialization of the payload at the link bandwidth) and per-hop per-byte
// energy. A zero-hop transfer (a == b) is free — the data never leaves the
// tile. Inter-shard activation handoffs are priced with this.
func (m *Mesh) TransferCost(a, b int, bytes float64) (energyPJ, latencyNS float64, err error) {
	if bytes < 0 {
		return 0, 0, fmt.Errorf("noc: transferring %v bytes", bytes)
	}
	h, err := m.Hops(a, b)
	if err != nil {
		return 0, 0, err
	}
	if h == 0 {
		return 0, 0, nil
	}
	bw := m.LinkBytesPerNS
	if bw <= 0 {
		bw = DefaultLinkBytesPerNS
	}
	energyPJ = float64(h) * bytes * m.HopEnergyPJPerByte
	latencyNS = float64(h)*m.HopLatencyNS + bytes/bw
	return energyPJ, latencyNS, nil
}
