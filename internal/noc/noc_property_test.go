package noc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: Hops is symmetric on arbitrary mesh widths and tile pairs.
func TestHopsSymmetryAcrossWidths(t *testing.T) {
	f := func(wRaw, aRaw, bRaw uint16) bool {
		w := 1 + int(wRaw)%64
		m, err := NewMesh(w)
		if err != nil {
			return false
		}
		a, b := int(aRaw)%(w*w), int(bRaw)%(w*w)
		ab, err1 := m.Hops(a, b)
		ba, err2 := m.Hops(b, a)
		return err1 == nil && err2 == nil && ab == ba
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: WidthFor is exact at perfect squares and their neighbors — a
// w×w bank needs exactly width w, one tile more forces w+1, one tile fewer
// still fits in w.
func TestWidthForPerfectSquareNeighbors(t *testing.T) {
	for w := 1; w <= 300; w++ {
		if got := WidthFor(w * w); got != w {
			t.Fatalf("WidthFor(%d²) = %d, want %d", w, got, w)
		}
		if got := WidthFor(w*w + 1); got != w+1 {
			t.Fatalf("WidthFor(%d²+1) = %d, want %d", w, got, w+1)
		}
		if w >= 2 {
			if got := WidthFor(w*w - 1); got != w {
				t.Fatalf("WidthFor(%d²−1) = %d, want %d", w, got, w)
			}
		}
	}
}

// Property: adding tiles above the root never decreases gather energy or
// latency — more sources mean more traffic over the same tree. (Scoped to
// added IDs above the current root on purpose: a new tile below the root
// takes over as gather root and moves the whole tree, so cost can
// legitimately drop — e.g. a central new root replacing an eccentric one.)
func TestGatherCostMonotonicUnderAddedTiles(t *testing.T) {
	m := mesh(t, 16)
	rng := rand.New(rand.NewSource(7))
	n := m.Width * m.Width
	for trial := 0; trial < 200; trial++ {
		root := rng.Intn(n - 8)
		set := map[int]bool{root: true}
		tiles := []int{root}
		for len(tiles) < 2+rng.Intn(6) {
			id := root + 1 + rng.Intn(n-root-1)
			if !set[id] {
				set[id] = true
				tiles = append(tiles, id)
			}
		}
		e0, l0, err := m.GatherCost(tiles, 64)
		if err != nil {
			t.Fatal(err)
		}
		// Grow the set by one tile above the root.
		var extra int
		for {
			extra = root + 1 + rng.Intn(n-root-1)
			if !set[extra] {
				break
			}
		}
		e1, l1, err := m.GatherCost(append(tiles, extra), 64)
		if err != nil {
			t.Fatal(err)
		}
		if e1 <= e0 {
			t.Fatalf("adding tile %d to %v left energy %v <= %v", extra, tiles, e1, e0)
		}
		if l1 < l0 {
			t.Fatalf("adding tile %d to %v decreased latency %v < %v", extra, tiles, l1, l0)
		}
	}
}
