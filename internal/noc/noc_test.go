package noc

import (
	"math"
	"testing"
	"testing/quick"
)

func mesh(t *testing.T, w int) *Mesh {
	t.Helper()
	m, err := NewMesh(w)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewMeshValidation(t *testing.T) {
	if _, err := NewMesh(0); err == nil {
		t.Fatal("zero width must error")
	}
	if _, err := NewMesh(-3); err == nil {
		t.Fatal("negative width must error")
	}
}

// TestWidthFor is the regression test for the mesh-sizing inconsistency:
// the mesh width must be derived from the bank's tile capacity
// (ceil(sqrt(tiles))), so the default 256×256-tile bank gets a 256-wide
// mesh — not a mesh of 256² tiles.
func TestWidthFor(t *testing.T) {
	cases := []struct{ tiles, want int }{
		{0, 1}, {1, 1}, {2, 2}, {4, 2}, {5, 3}, {9, 3}, {10, 4},
		{256, 16},
		{256 * 256, 256}, // the paper's bank: hw.DefaultConfig TilesPerBank
		{256*256 + 1, 257},
	}
	for _, c := range cases {
		if got := WidthFor(c.tiles); got != c.want {
			t.Errorf("WidthFor(%d) = %d, want %d", c.tiles, got, c.want)
		}
	}
	// The derived mesh always covers every tile ID in [0, tiles).
	for _, tiles := range []int{1, 7, 100, 65536} {
		m, err := NewMeshFor(tiles)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := m.Coord(tiles - 1); err != nil {
			t.Errorf("NewMeshFor(%d): last tile outside mesh: %v", tiles, err)
		}
	}
	if _, err := NewMeshFor(0); err == nil {
		t.Fatal("zero-capacity bank must error")
	}
}

func TestCoordRowMajor(t *testing.T) {
	m := mesh(t, 4)
	cases := []struct{ t, x, y int }{
		{0, 0, 0}, {3, 3, 0}, {4, 0, 1}, {15, 3, 3},
	}
	for _, c := range cases {
		x, y, err := m.Coord(c.t)
		if err != nil || x != c.x || y != c.y {
			t.Errorf("Coord(%d) = (%d,%d,%v), want (%d,%d)", c.t, x, y, err, c.x, c.y)
		}
	}
	if _, _, err := m.Coord(16); err == nil {
		t.Fatal("out-of-mesh tile must error")
	}
	if _, _, err := m.Coord(-1); err == nil {
		t.Fatal("negative tile must error")
	}
}

func TestHopsManhattan(t *testing.T) {
	m := mesh(t, 4)
	cases := []struct{ a, b, want int }{
		{0, 0, 0},
		{0, 3, 3},
		{0, 15, 6},
		{5, 10, 2},
	}
	for _, c := range cases {
		h, err := m.Hops(c.a, c.b)
		if err != nil || h != c.want {
			t.Errorf("Hops(%d,%d) = %d,%v, want %d", c.a, c.b, h, err, c.want)
		}
	}
}

// Property: hops are symmetric, non-negative, and satisfy the triangle
// inequality.
func TestHopsMetricProperties(t *testing.T) {
	m := mesh(t, 8)
	f := func(aRaw, bRaw, cRaw uint8) bool {
		a, b, c := int(aRaw)%64, int(bRaw)%64, int(cRaw)%64
		ab, _ := m.Hops(a, b)
		ba, _ := m.Hops(b, a)
		ac, _ := m.Hops(a, c)
		cb, _ := m.Hops(c, b)
		return ab == ba && ab >= 0 && ab <= ac+cb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGatherCost(t *testing.T) {
	m := mesh(t, 4)
	// Single tile: free.
	e, l, err := m.GatherCost([]int{5}, 100)
	if err != nil || e != 0 || l != 0 {
		t.Fatalf("single-tile gather = %v,%v,%v", e, l, err)
	}
	// Tiles 0,1,2 gather at 0: hops 1+2 = 3 → energy 3·100·0.05 = 15 pJ,
	// latency = 2 hops · 1 ns.
	e, l, err = m.GatherCost([]int{0, 1, 2}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e-15) > 1e-12 {
		t.Fatalf("gather energy = %v, want 15", e)
	}
	if l != 2 {
		t.Fatalf("gather latency = %v, want 2", l)
	}
	// Root is always the lowest ID regardless of order.
	e2, _, _ := m.GatherCost([]int{2, 0, 1}, 100)
	if e2 != e {
		t.Fatal("gather must be order-independent")
	}
	// Scatter is symmetric.
	es, ls, _ := m.ScatterCost([]int{0, 1, 2}, 100)
	if es != e || ls != l {
		t.Fatal("scatter must equal gather")
	}
}

func TestGatherSpreadCostsMore(t *testing.T) {
	m := mesh(t, 16)
	// Adjacent tiles vs the same count scattered across the mesh.
	near, _, _ := m.GatherCost([]int{0, 1, 2, 3}, 10)
	far, _, _ := m.GatherCost([]int{0, 15, 240, 255}, 10)
	if far <= near {
		t.Fatalf("scattered placement must cost more: %v vs %v", far, near)
	}
}

func TestGatherCostBadTile(t *testing.T) {
	m := mesh(t, 2)
	if _, _, err := m.GatherCost([]int{0, 9}, 1); err == nil {
		t.Fatal("out-of-mesh tile must error")
	}
}
