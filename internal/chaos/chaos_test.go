package chaos

import (
	"math/rand"
	"reflect"
	"testing"
)

func names(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = string(rune('a' + i%26)) // names repeat past 26; fine for selection tests
	}
	for i := range out {
		out[i] = out[i] + string(rune('0'+i/26))
	}
	return out
}

func TestScriptedSortsStable(t *testing.T) {
	s := Scripted(
		Event{AtNS: 200, Kind: Restart, Target: "b"},
		Event{AtNS: 100, Kind: Crash, Target: "a"},
		Event{AtNS: 100, Kind: Crash, Target: "b"},
	)
	if s.Events[0].Target != "a" || s.Events[1].Target != "b" || s.Events[2].Kind != Restart {
		t.Fatalf("scripted order wrong: %v", s.Events)
	}
}

func TestCrashStormDeterministicAndPaired(t *testing.T) {
	ns := names(16)
	a := CrashStorm(1e9, 5e8, ns, 0.25, 7)
	b := CrashStorm(1e9, 5e8, ns, 0.25, 7)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different storms")
	}
	// 0.25 of 16 → 4 replicas, crash+restart each.
	if len(a.Events) != 8 {
		t.Fatalf("want 8 events, got %d", len(a.Events))
	}
	crashed := map[string]bool{}
	for _, ev := range a.Events {
		switch ev.Kind {
		case Crash:
			if ev.AtNS != 1e9 {
				t.Fatalf("crash at %v", ev.AtNS)
			}
			crashed[ev.Target] = true
		case Restart:
			if ev.AtNS != 1.5e9 {
				t.Fatalf("restart at %v", ev.AtNS)
			}
			if !crashed[ev.Target] {
				t.Fatalf("restart of %q without crash", ev.Target)
			}
		}
	}
	if c := CrashStorm(1e9, 5e8, ns, 0.25, 8); reflect.DeepEqual(a.Events, c.Events) {
		t.Fatal("different seeds picked identical victims")
	}
}

func TestStochasticAlternatesPerReplica(t *testing.T) {
	ns := names(8)
	cfg := StochasticConfig{MTBFNS: 2e9, MTTRNS: 5e8, FailSlowFrac: 0.5}
	s := Stochastic(cfg, ns, 20e9, 42)
	if len(s.Events) == 0 {
		t.Fatal("no events over 10 MTBFs × 8 replicas")
	}
	s2 := Stochastic(cfg, ns, 20e9, 42)
	if !reflect.DeepEqual(s, s2) {
		t.Fatal("stochastic schedule not deterministic")
	}
	// Per replica: events alternate fail → recover and never exceed horizon
	// for the failure instants.
	type st struct {
		down bool
		last float64
	}
	state := map[string]*st{}
	prev := -1.0
	for _, ev := range s.Events {
		if ev.AtNS < prev {
			t.Fatalf("events unsorted at %v < %v", ev.AtNS, prev)
		}
		prev = ev.AtNS
		r := state[ev.Target]
		if r == nil {
			r = &st{}
			state[ev.Target] = r
		}
		switch ev.Kind {
		case Crash:
			if r.down {
				t.Fatalf("%s crashed twice", ev.Target)
			}
			if ev.AtNS >= 20e9 {
				t.Fatalf("failure past horizon: %v", ev.AtNS)
			}
			r.down = true
		case Restart:
			if r.down != true {
				t.Fatalf("%s restarted while up", ev.Target)
			}
			r.down = false
		case Slow:
			if ev.Value > 1 && r.down {
				t.Fatalf("%s slowed while down", ev.Target)
			}
			r.down = ev.Value > 1
		}
	}
}

func TestMergeOrders(t *testing.T) {
	a := Scripted(Event{AtNS: 5, Kind: Crash, Target: "x"})
	b := Scripted(Event{AtNS: 1, Kind: Crash, Target: "y"}, Event{AtNS: 5, Kind: Restart, Target: "y"})
	m := Merge(a, b, nil)
	want := []Event{
		{AtNS: 1, Kind: Crash, Target: "y"},
		{AtNS: 5, Kind: Crash, Target: "x"},
		{AtNS: 5, Kind: Restart, Target: "y"},
	}
	if !reflect.DeepEqual(m.Events, want) {
		t.Fatalf("merge order: %v", m.Events)
	}
}

func TestBreakerStateMachine(t *testing.T) {
	b := NewBreaker(BreakerConfig{FailureThreshold: 3, OpenNS: 100, ProbeSuccesses: 2})
	if b.State() != BreakerClosed || !b.CanRoute(0) {
		t.Fatal("new breaker not closed")
	}
	// Two failures: still closed; a success resets the streak.
	b.Record(0, false)
	b.Record(1, false)
	b.Record(2, true)
	b.Record(3, false)
	b.Record(4, false)
	if b.State() != BreakerClosed {
		t.Fatal("streak did not reset on success")
	}
	b.Record(5, false)
	if b.State() != BreakerOpen {
		t.Fatal("threshold did not open breaker")
	}
	if b.CanRoute(50) {
		t.Fatal("routable during cooldown")
	}
	if !b.CanRoute(105) {
		t.Fatal("not routable after cooldown")
	}
	if b.State() != BreakerOpen {
		t.Fatal("CanRoute mutated state")
	}
	b.OnRoute(105)
	if b.State() != BreakerHalfOpen {
		t.Fatal("OnRoute did not claim probe")
	}
	if b.CanRoute(106) {
		t.Fatal("second probe allowed while one in flight")
	}
	b.Record(110, true) // probe 1 ok
	if !b.CanRoute(111) {
		t.Fatal("half-open refuses next probe")
	}
	b.OnRoute(111)
	b.Record(115, true) // probe 2 ok → closed
	if b.State() != BreakerClosed {
		t.Fatal("probe successes did not close")
	}
	// Re-open and fail the probe: straight back to open with a fresh
	// cooldown.
	for i := 0; i < 3; i++ {
		b.Record(200, false)
	}
	b.OnRoute(305)
	b.Record(306, false)
	if b.State() != BreakerOpen {
		t.Fatal("failed probe did not re-open")
	}
	if b.CanRoute(350) {
		t.Fatal("cooldown not restarted after failed probe")
	}
}

func TestBackoffGrowthCapJitter(t *testing.T) {
	p := RetryPolicy{BaseNS: 1000, CapNS: 4000, JitterFrac: 0.5}.WithDefaults()
	rng := rand.New(rand.NewSource(1))
	for retry, wantMid := range map[int]float64{1: 1000, 2: 2000, 3: 4000, 4: 4000} {
		for i := 0; i < 100; i++ {
			d := p.BackoffNS(retry, rng)
			if d < wantMid*0.5 || d > wantMid*1.5 {
				t.Fatalf("retry %d: backoff %v outside ±50%% of %v", retry, d, wantMid)
			}
		}
	}
	nj := RetryPolicy{BaseNS: 1000, JitterFrac: -1}.WithDefaults()
	if d := nj.BackoffNS(1, rng); d != 1000 {
		t.Fatalf("jitter-disabled backoff %v != 1000", d)
	}
}

func TestRetryBudget(t *testing.T) {
	b := NewRetryBudget(RetryPolicy{BudgetFrac: 0.5, BudgetBurst: 2})
	if !b.Spend() || !b.Spend() {
		t.Fatal("full bucket refused spends")
	}
	if b.Spend() {
		t.Fatal("empty bucket allowed a spend")
	}
	b.Earn() // +0.5 → 0.5, still under one token
	if b.Spend() {
		t.Fatal("fractional token spent")
	}
	b.Earn() // 1.0
	if !b.Spend() {
		t.Fatal("earned token refused")
	}
	for i := 0; i < 100; i++ {
		b.Earn()
	}
	if b.Tokens() != 2 {
		t.Fatalf("burst cap not applied: %v", b.Tokens())
	}
}

func TestHedgeDelay(t *testing.T) {
	p := HedgePolicy{MinDelayNS: 100, MaxDelayNS: 1000, MinSamples: 10}.WithDefaults()
	if d := p.DelayNS(5, 500); d != 100 {
		t.Fatalf("undersampled delay %v != MinDelayNS", d)
	}
	if d := p.DelayNS(50, 500); d != 500 {
		t.Fatalf("quantile delay %v != 500", d)
	}
	if d := p.DelayNS(50, 5); d != 100 {
		t.Fatalf("floor not applied: %v", d)
	}
	if d := p.DelayNS(50, 1e9); d != 1000 {
		t.Fatalf("cap not applied: %v", d)
	}
}

func TestBrownoutSheds(t *testing.T) {
	p := BrownoutPolicy{MaxQueuedPerActive: 8, Levels: 4}.WithDefaults()
	if p.Shed(0, 1000, 1) {
		t.Fatal("priority 0 shed")
	}
	// Class 3 (least important) sheds at backlog > 8·(1/4)·active = 2/active.
	if !p.Shed(3, 3, 1) || p.Shed(3, 2, 1) {
		t.Fatal("class-3 threshold wrong")
	}
	// Class 1 sheds only past 8·(3/4) = 6 per active.
	if p.Shed(1, 6, 1) || !p.Shed(1, 7, 1) {
		t.Fatal("class-1 threshold wrong")
	}
	if p.Priority(5) != 1 || p.Priority(8) != 0 {
		t.Fatal("priority assignment wrong")
	}
}

func TestResilienceEnabled(t *testing.T) {
	var r Resilience
	if r.Enabled() {
		t.Fatal("zero value enabled")
	}
	if !DefaultResilience().Enabled() {
		t.Fatal("default stack disabled")
	}
}
