// Package chaos is the fault-injection and client-side-resilience toolkit
// shared by both fleet engines (the goroutine runtime in internal/fleet and
// the discrete-event simulator in internal/des).
//
// Injection side: a Schedule is a deterministic, virtual-time-ordered list
// of fault events — replica crashes and restarts, fail-slow service
// multipliers, degraded NoC/link transfer cost, and correlated stuck-at
// fault storms (which drive the existing internal/repair sweep path in the
// goroutine runtime). Schedules are either scripted outright or generated
// from MTBF/MTTR distributions with a seed; either way the same seed yields
// the same byte-for-byte event sequence, so chaos experiments replay
// exactly (the DES fleet asserts a byte-identical event log under chaos in
// its determinism test).
//
// Resilience side: policy values describing retries with exponential
// backoff + jitter under a token-bucket retry budget (RetryPolicy,
// RetryBudget), hedged requests launched after a latency-quantile delay
// with first-wins cancellation (HedgePolicy), per-replica circuit breakers
// (Breaker: closed → open → half-open with probe requests), and brownout
// priority shedding under overload (BrownoutPolicy). The policies hold no
// engine state beyond what their methods document, so both engines consume
// the same types.
package chaos

import (
	"fmt"
	"math/rand"
	"sort"
)

// Kind names a fault-event type.
type Kind string

// The injectable fault kinds.
const (
	// Crash fail-stops the target replica: its queue is drained (lost —
	// the resilience layer's retries are what recover the work) and it
	// accepts no traffic until a Restart.
	Crash Kind = "crash"
	// Restart returns a crashed replica to service with an idle pipeline.
	Restart Kind = "restart"
	// Slow multiplies the target's service time (fill and initiation
	// interval) by Value — a fail-slow straggler. Value 1 (or 0) restores
	// full speed.
	Slow Kind = "slow"
	// Link adds Value nanoseconds of degraded NoC/link transfer cost to
	// every batch the target serves (added to the pipeline fill). Value 0
	// restores the healthy link.
	Link Kind = "link"
	// Faults injects a stuck-at cell fault storm of rate Value on the
	// target. The goroutine fleet routes this through its online
	// detect/repair sweep path; the DES fleet folds it into the static
	// health score against DegradeThreshold.
	Faults Kind = "faults"
)

// Event is one scheduled fault at a virtual time.
type Event struct {
	// AtNS is the virtual time the fault strikes, in nanoseconds on the
	// workload clock.
	AtNS float64
	// Kind selects what happens; Target names the replica it happens to.
	Kind   Kind
	Target string
	// Value parameterizes Slow (multiplier), Link (added ns), and Faults
	// (stuck-at cell rate); Crash and Restart ignore it.
	Value float64
}

func (e Event) String() string {
	return fmt.Sprintf("%s@%.0fns %s %g", e.Kind, e.AtNS, e.Target, e.Value)
}

// Schedule is a virtual-time-ordered fault script. Build with Scripted,
// CrashStorm, SlowStorm, or Stochastic, and combine with Merge.
type Schedule struct {
	Events []Event
}

// sortEvents orders by time with a stable sort, so equal-time events keep
// their construction order — the determinism contract.
func (s *Schedule) sortEvents() {
	sort.SliceStable(s.Events, func(i, j int) bool {
		return s.Events[i].AtNS < s.Events[j].AtNS
	})
}

// Scripted builds a schedule from explicit events (sorted by time, stable).
func Scripted(events ...Event) *Schedule {
	s := &Schedule{Events: append([]Event(nil), events...)}
	s.sortEvents()
	return s
}

// Merge combines schedules into one time-ordered script. Equal-time events
// keep argument order (stable).
func Merge(schedules ...*Schedule) *Schedule {
	out := &Schedule{}
	for _, s := range schedules {
		if s != nil {
			out.Events = append(out.Events, s.Events...)
		}
	}
	out.sortEvents()
	return out
}

// pickFrac deterministically selects ceil(frac·len(names)) replica names
// (at least one for frac > 0) by shuffling a copy with the seed.
func pickFrac(names []string, frac float64, seed int64) []string {
	if frac <= 0 || len(names) == 0 {
		return nil
	}
	n := int(frac*float64(len(names)) + 0.999999)
	if n < 1 {
		n = 1
	}
	if n > len(names) {
		n = len(names)
	}
	picked := append([]string(nil), names...)
	rng := rand.New(rand.NewSource(SubSeed(seed, "chaos/pick")))
	rng.Shuffle(len(picked), func(i, j int) { picked[i], picked[j] = picked[j], picked[i] })
	return picked[:n]
}

// CrashStorm builds a correlated failure: a fraction frac of the named
// replicas (chosen by seed) crash together at atNS and restart mttrNS
// later. It is the canonical "seeded crash storm" of the chaos experiment.
func CrashStorm(atNS, mttrNS float64, names []string, frac float64, seed int64) *Schedule {
	s := &Schedule{}
	for _, name := range pickFrac(names, frac, seed) {
		s.Events = append(s.Events, Event{AtNS: atNS, Kind: Crash, Target: name})
		if mttrNS > 0 {
			s.Events = append(s.Events, Event{AtNS: atNS + mttrNS, Kind: Restart, Target: name})
		}
	}
	s.sortEvents()
	return s
}

// SlowStorm makes a fraction frac of the named replicas fail-slow by factor
// from atNS until atNS+durNS (restored afterwards; durNS <= 0 means the
// slowdown is permanent). The selection seed stream is decorrelated from
// CrashStorm's, so storms built from the same base seed hit different
// replicas.
func SlowStorm(atNS, durNS float64, names []string, frac, factor float64, seed int64) *Schedule {
	s := &Schedule{}
	for _, name := range pickFrac(names, frac, SubSeed(seed, "chaos/slowstorm")) {
		s.Events = append(s.Events, Event{AtNS: atNS, Kind: Slow, Target: name, Value: factor})
		if durNS > 0 {
			s.Events = append(s.Events, Event{AtNS: atNS + durNS, Kind: Slow, Target: name, Value: 1})
		}
	}
	s.sortEvents()
	return s
}

// StochasticConfig parameterizes a Stochastic schedule.
type StochasticConfig struct {
	// MTBFNS is the mean virtual time between failures per replica
	// (exponential); MTTRNS is the mean time to restart (exponential).
	MTBFNS, MTTRNS float64
	// FailSlowFrac is the probability a failure manifests as a fail-slow
	// straggler (service × SlowFactor until "repair") instead of a crash.
	FailSlowFrac float64
	// SlowFactor is the fail-slow service multiplier (default 10).
	SlowFactor float64
}

// Stochastic generates per-replica alternating up/down renewal processes
// over [0, horizonNS): each replica draws exponential up-times (mean MTBF)
// and down-times (mean MTTR) from its own seed-derived stream, so the
// script is deterministic in (cfg, names, horizon, seed) and replicas fail
// independently.
func Stochastic(cfg StochasticConfig, names []string, horizonNS float64, seed int64) *Schedule {
	if cfg.SlowFactor <= 1 {
		cfg.SlowFactor = 10
	}
	s := &Schedule{}
	for _, name := range names {
		if cfg.MTBFNS <= 0 {
			continue
		}
		rng := rand.New(rand.NewSource(SubSeed(seed, "chaos/"+name)))
		t := rng.ExpFloat64() * cfg.MTBFNS
		for t < horizonNS {
			slow := cfg.FailSlowFrac > 0 && rng.Float64() < cfg.FailSlowFrac
			down := cfg.MTTRNS * rng.ExpFloat64()
			if slow {
				s.Events = append(s.Events, Event{AtNS: t, Kind: Slow, Target: name, Value: cfg.SlowFactor})
				s.Events = append(s.Events, Event{AtNS: t + down, Kind: Slow, Target: name, Value: 1})
			} else {
				s.Events = append(s.Events, Event{AtNS: t, Kind: Crash, Target: name})
				s.Events = append(s.Events, Event{AtNS: t + down, Kind: Restart, Target: name})
			}
			t += down + rng.ExpFloat64()*cfg.MTBFNS
		}
	}
	s.sortEvents()
	return s
}

// SubSeed derives a stable seed for a named random stream from a base seed
// (FNV-1a over the name, XORed in) — the same idiom as des.SubSeed, kept
// local so chaos stays importable by both engines without a cycle.
func SubSeed(seed int64, name string) int64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	s := seed ^ int64(h)
	if s == 0 { // rand.NewSource(0) is a degenerate-looking stream; avoid it
		s = int64(h)
	}
	return s
}
