package chaos

import (
	"sync"
)

// Per-replica circuit breaker. The state machine is the classic three-state
// one (see DESIGN.md §12 for the diagram):
//
//	Closed    — traffic flows; FailureThreshold consecutive failures open it.
//	Open      — no traffic for OpenNS of virtual time; then the next router
//	            claims a single probe (half-open).
//	Half-open — one probe in flight at a time; ProbeSuccesses consecutive
//	            probe successes close the breaker, any failure re-opens it.
//
// The API splits routing into a non-mutating CanRoute (candidate filtering
// may consult many breakers per dispatch) and a mutating OnRoute (the final
// pick claims the probe slot), so scanning candidates never burns probes.
// Time is caller-supplied virtual nanoseconds — both engines feed their own
// clock — which keeps breaker behavior deterministic and replayable.

// BreakerState enumerates the circuit-breaker states.
type BreakerState int32

// The breaker states.
const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// BreakerConfig tunes the state machine. Zero fields select the documented
// defaults.
type BreakerConfig struct {
	// FailureThreshold is the consecutive-failure count that opens a
	// closed breaker (default 5).
	FailureThreshold int
	// OpenNS is the open-state cooldown in virtual nanoseconds before a
	// probe may be attempted (default 100 ms virtual).
	OpenNS float64
	// ProbeSuccesses is the consecutive half-open probe successes needed
	// to close (default 2).
	ProbeSuccesses int
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.OpenNS <= 0 {
		c.OpenNS = 100e6
	}
	if c.ProbeSuccesses <= 0 {
		c.ProbeSuccesses = 2
	}
	return c
}

// Breaker is one replica's circuit breaker. Create with NewBreaker; methods
// are safe for concurrent use (the goroutine fleet records outcomes from
// replica loops while submitters route).
type Breaker struct {
	mu        sync.Mutex
	cfg       BreakerConfig
	state     BreakerState
	fails     int     // consecutive failures while closed
	successes int     // consecutive probe successes while half-open
	probeAt   float64 // virtual time the open cooldown elapses
	probing   bool    // a half-open probe is in flight
}

// NewBreaker builds a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// State returns the current state.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// CanRoute reports whether a request may be routed through the breaker at
// virtual time nowNS: closed always, open only once the cooldown elapsed
// (the route would become the probe), half-open only while no probe is in
// flight. It does not mutate state — call OnRoute on the finally-picked
// replica.
func (b *Breaker) CanRoute(nowNS float64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerOpen:
		return nowNS >= b.probeAt
	case BreakerHalfOpen:
		return !b.probing
	default:
		return true
	}
}

// OnRoute commits a routing decision at virtual time nowNS: an open breaker
// past its cooldown transitions to half-open and the request becomes its
// probe; a half-open breaker marks its probe in flight.
func (b *Breaker) OnRoute(nowNS float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerOpen:
		if nowNS >= b.probeAt {
			b.state = BreakerHalfOpen
			b.successes = 0
			b.probing = true
		}
	case BreakerHalfOpen:
		b.probing = true
	}
}

// Record feeds one request outcome observed at virtual time nowNS. Failures
// while closed count toward FailureThreshold; any failure while half-open
// re-opens; successes reset the failure streak or advance probe credit.
func (b *Breaker) Record(nowNS float64, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		if ok {
			b.fails = 0
			return
		}
		b.fails++
		if b.fails >= b.cfg.FailureThreshold {
			b.open(nowNS)
		}
	case BreakerHalfOpen:
		b.probing = false
		if !ok {
			b.open(nowNS)
			return
		}
		b.successes++
		if b.successes >= b.cfg.ProbeSuccesses {
			b.state = BreakerClosed
			b.fails = 0
		}
	case BreakerOpen:
		// Late outcomes from before the trip; the cooldown already
		// gates probing, so nothing to update.
	}
}

func (b *Breaker) open(nowNS float64) {
	b.state = BreakerOpen
	b.fails = 0
	b.successes = 0
	b.probing = false
	b.probeAt = nowNS + b.cfg.OpenNS
}
