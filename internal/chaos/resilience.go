package chaos

import (
	"math"
	"math/rand"
)

// Client-side resilience policies. All are plain deterministic values; the
// engines own the state they drive (timers, histograms, budgets).

// RetryPolicy re-dispatches requests whose copy was lost to a crash or a
// dead-end route, with exponential backoff and jitter. Zero fields select
// the documented defaults.
type RetryPolicy struct {
	// MaxAttempts bounds total dispatch attempts per request, the first
	// included (default 3 = up to two retries).
	MaxAttempts int
	// BaseNS is the first backoff delay (default 1 ms virtual); each
	// further attempt doubles it up to CapNS (default 100 ms virtual).
	BaseNS float64
	CapNS  float64
	// JitterFrac spreads each delay uniformly over ±frac of itself
	// (default 0.5), decorrelating retry storms.
	JitterFrac float64
	// BudgetFrac is the token-bucket retry budget: every completed
	// request earns this many retry tokens (default 0.1 — at most ~10%
	// extra load from retries), each retry spends one. A drained budget
	// fails the request instead of retrying — the anti-retry-storm valve.
	BudgetFrac float64
	// BudgetBurst caps the token bucket (default 10 tokens).
	BudgetBurst float64
}

// WithDefaults returns the policy with zero fields defaulted.
func (p RetryPolicy) WithDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BaseNS <= 0 {
		p.BaseNS = 1e6
	}
	if p.CapNS <= 0 {
		p.CapNS = 100e6
	}
	if p.JitterFrac < 0 {
		p.JitterFrac = 0
	} else if p.JitterFrac == 0 {
		p.JitterFrac = 0.5
	}
	if p.JitterFrac > 1 {
		p.JitterFrac = 1
	}
	if p.BudgetFrac <= 0 {
		p.BudgetFrac = 0.1
	}
	if p.BudgetBurst <= 0 {
		p.BudgetBurst = 10
	}
	return p
}

// BackoffNS returns the delay before retry number retry (1-based):
// base·2^(retry−1) capped at CapNS, jittered ±JitterFrac from rng. Apply
// WithDefaults first.
func (p RetryPolicy) BackoffNS(retry int, rng *rand.Rand) float64 {
	if retry < 1 {
		retry = 1
	}
	d := p.BaseNS * math.Pow(2, float64(retry-1))
	if d > p.CapNS {
		d = p.CapNS
	}
	if p.JitterFrac > 0 {
		d *= 1 + p.JitterFrac*(2*rng.Float64()-1)
	}
	return d
}

// RetryBudget is the token bucket behind RetryPolicy.BudgetFrac. It is not
// concurrency-safe; each engine owns one on its own goroutine (the
// goroutine fleet guards it with its dispatch lock).
type RetryBudget struct {
	tokens float64
	frac   float64
	burst  float64
}

// NewRetryBudget builds a full bucket for the (defaulted) policy.
func NewRetryBudget(p RetryPolicy) *RetryBudget {
	p = p.WithDefaults()
	return &RetryBudget{tokens: p.BudgetBurst, frac: p.BudgetFrac, burst: p.BudgetBurst}
}

// Earn credits one completed request's worth of retry budget.
func (b *RetryBudget) Earn() {
	b.tokens += b.frac
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
}

// Spend consumes one retry token, reporting false (and consuming nothing)
// when the bucket is too low — the caller then fails instead of retrying.
func (b *RetryBudget) Spend() bool {
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// Tokens returns the current balance (metrics).
func (b *RetryBudget) Tokens() float64 { return b.tokens }

// HedgePolicy launches a backup copy of a still-unfinished request after a
// delay derived from the observed completion-latency distribution;
// whichever copy completes first wins and the loser is cancelled at its
// queue (first-wins). Zero fields select the documented defaults.
type HedgePolicy struct {
	// Quantile of observed completion latency to wait before hedging
	// (default 0.95 — the classic tail-at-scale p95 hedge).
	Quantile float64
	// MinDelayNS floors the hedge delay and stands in for it until
	// MinSamples completions have been observed (default 1 ms virtual).
	MinDelayNS float64
	// MaxDelayNS caps the delay (default 0 = uncapped).
	MaxDelayNS float64
	// MinSamples is the completion count before the quantile is trusted
	// (default 64).
	MinSamples int
}

// WithDefaults returns the policy with zero fields defaulted.
func (p HedgePolicy) WithDefaults() HedgePolicy {
	if p.Quantile <= 0 || p.Quantile >= 1 {
		p.Quantile = 0.95
	}
	if p.MinDelayNS <= 0 {
		p.MinDelayNS = 1e6
	}
	if p.MinSamples <= 0 {
		p.MinSamples = 64
	}
	return p
}

// DelayNS derives the hedge delay from the observed quantile (already
// sampled by the caller): the quantile clamped to [MinDelayNS, MaxDelayNS],
// or MinDelayNS outright while samples < MinSamples. Apply WithDefaults
// first.
func (p HedgePolicy) DelayNS(samples int64, quantileNS float64) float64 {
	if samples < int64(p.MinSamples) {
		return p.MinDelayNS
	}
	d := quantileNS
	if d < p.MinDelayNS {
		d = p.MinDelayNS
	}
	if p.MaxDelayNS > 0 && d > p.MaxDelayNS {
		d = p.MaxDelayNS
	}
	return d
}

// BrownoutPolicy sheds the lowest-priority work first when the fleet-wide
// backlog passes a threshold — graceful degradation under overload, so the
// top priority class keeps its SLO while bulk traffic browns out.
type BrownoutPolicy struct {
	// MaxQueuedPerActive is the backlog (waiting requests per active
	// replica) above which non-top-priority work is shed (default 8).
	MaxQueuedPerActive float64
	// Levels is the number of priority classes (default 4). Priority is
	// assigned by Priority (request id mod Levels; 0 is most important)
	// unless the caller supplies its own.
	Levels int
}

// WithDefaults returns the policy with zero fields defaulted.
func (p BrownoutPolicy) WithDefaults() BrownoutPolicy {
	if p.MaxQueuedPerActive <= 0 {
		p.MaxQueuedPerActive = 8
	}
	if p.Levels <= 1 {
		p.Levels = 4
	}
	return p
}

// Priority derives a deterministic priority class from a request id:
// id mod Levels, with 0 the most important.
func (p BrownoutPolicy) Priority(id int) int {
	if p.Levels <= 1 {
		return 0
	}
	return id % p.Levels
}

// Shed reports whether a request of the given priority should brown out
// when queued backlog is spread over active replicas: priority 0 never
// sheds here, and higher (= less important) classes shed at progressively
// lower backlog — class k sheds when backlog exceeds threshold·(L−k)/L.
func (p BrownoutPolicy) Shed(priority, queued, active int) bool {
	if priority <= 0 || active <= 0 {
		return false
	}
	if priority >= p.Levels {
		priority = p.Levels - 1
	}
	frac := float64(p.Levels-priority) / float64(p.Levels)
	return float64(queued) > p.MaxQueuedPerActive*frac*float64(active)
}

// Resilience bundles the client-side policies. Nil members are disabled;
// the zero value disables everything (exact legacy engine behavior).
type Resilience struct {
	Retry    *RetryPolicy
	Hedge    *HedgePolicy
	Breaker  *BreakerConfig
	Brownout *BrownoutPolicy
}

// Enabled reports whether any policy is configured.
func (r Resilience) Enabled() bool {
	return r.Retry != nil || r.Hedge != nil || r.Breaker != nil || r.Brownout != nil
}

// DefaultResilience is the full stack with documented defaults — what the
// chaos experiment's "resilient" row runs.
func DefaultResilience() Resilience {
	return Resilience{
		Retry:    &RetryPolicy{},
		Hedge:    &HedgePolicy{},
		Breaker:  &BreakerConfig{},
		Brownout: &BrownoutPolicy{},
	}
}
