package hw

import "autohet/internal/xbar"

// Per-structure area and latency helpers. Energy is accounted per activated
// component by package sim; area and read latency are geometric properties
// of the provisioned structures, computed here.

// ADCsPerXB returns the number of ADCs a crossbar of shape s carries: one
// per ColsPerADC bitlines, rounded up.
func (c Config) ADCsPerXB(s xbar.Shape) int {
	return (s.C + c.ColsPerADC - 1) / c.ColsPerADC
}

// XBArea returns the area of one crossbar of shape s including its private
// periphery: the cell array, one 1-bit DAC per wordline, the column ADCs,
// and one shift-and-add unit per ADC.
func (c Config) XBArea(s xbar.Shape) float64 {
	cells := float64(s.Cells()) * CellArea
	dacs := float64(s.R) * DACArea
	adcs := float64(c.ADCsPerXB(s)) * c.ADCArea()
	sa := float64(c.ADCsPerXB(s)) * ShiftAddArea
	return cells + dacs + adcs + sa
}

// PEArea returns the area of one PE: XBPerPE crossbars of shape s.
func (c Config) PEArea(s xbar.Shape) float64 {
	return float64(c.XBPerPE) * c.XBArea(s)
}

// TileArea returns the area of one tile built from crossbars of shape s:
// PEsPerTile PEs plus the tile's buffers and pooling module.
func (c Config) TileArea(s xbar.Shape) float64 {
	return float64(c.PEsPerTile)*c.PEArea(s) + BufferAreaPerTile + PoolAreaPerTile
}

// XBReadLatency returns the latency of one crossbar MVM cycle in ns: the
// fixed sense time, the wordline settling proportional to the row count,
// and the ADC multiplexing over ColsPerADC bitlines per ADC.
func (c Config) XBReadLatency(s xbar.Shape) float64 {
	return XBFixedReadTime + WordlineDelay*float64(s.R) + float64(c.ColsPerADC)*ADCConvTime
}

// MergeLatency returns the latency of accumulating partial sums from
// gridRows vertically stacked crossbar bands through the tile adder tree
// (depth ⌈log₂⌉) plus merging across nTiles tiles over the bus.
func (c Config) MergeLatency(gridRows, nTiles int) float64 {
	depth := 0
	for n := 1; n < gridRows; n <<= 1 {
		depth++
	}
	lat := float64(depth) * ShiftAddDelay
	if nTiles > 1 {
		hops := 0
		for n := 1; n < nTiles; n <<= 1 {
			hops++
		}
		lat += float64(hops) * TileMergeDelay
	}
	return lat
}
