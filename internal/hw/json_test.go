package hw

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestReadConfigPartialOverride(t *testing.T) {
	cfg, err := ReadConfig(strings.NewReader(`{"pes_per_tile": 16, "adc_bits": 8}`))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.PEsPerTile != 16 || cfg.ADCBits != 8 {
		t.Fatalf("overrides not applied: %+v", cfg)
	}
	// Unset fields keep defaults.
	def := DefaultConfig()
	if cfg.XBPerPE != def.XBPerPE || cfg.TilesPerBank != def.TilesPerBank {
		t.Fatalf("defaults lost: %+v", cfg)
	}
}

func TestReadConfigRejections(t *testing.T) {
	cases := []string{
		`{`,                    // malformed
		`{"pes_per_tile": 0}`,  // fails validation
		`{"dac_bits": 2}`,      // unsupported
		`{"unknown_field": 1}`, // unknown key
		`{"xb_per_pe": 4}`,     // breaks XBPerPE == WeightBits
	}
	for _, text := range cases {
		if _, err := ReadConfig(strings.NewReader(text)); err == nil {
			t.Errorf("ReadConfig(%q) succeeded, want error", text)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PEsPerTile = 32
	cfg.ADCBits = 9
	var buf bytes.Buffer
	if err := cfg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadConfig(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back != cfg {
		t.Fatalf("round trip %+v != %+v", back, cfg)
	}
}

func TestLoadConfig(t *testing.T) {
	cfg, err := LoadConfig("")
	if err != nil || cfg != DefaultConfig() {
		t.Fatalf("empty path must give defaults: %+v, %v", cfg, err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "hw.json")
	if err := os.WriteFile(path, []byte(`{"pes_per_tile": 8}`), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, err = LoadConfig(path)
	if err != nil || cfg.PEsPerTile != 8 {
		t.Fatalf("LoadConfig = %+v, %v", cfg, err)
	}
	if _, err := LoadConfig(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file must error")
	}
}
