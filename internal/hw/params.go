// Package hw models the energy, area, and latency of the ReRAM accelerator's
// circuit components. It stands in for the MNSIM 2.0 behavior-level
// simulator the paper runs on (see DESIGN.md — substitutions): like MNSIM it
// prices each activated component (crossbar cells, DACs, ADCs, shift-adders,
// buffers, pooling) per operation and sums. Constants are drawn from the
// ISAAC/MNSIM literature and are deliberately parameterized — the paper's
// conclusions rest on the *relative* cost structure (ADC-dominated energy,
// periphery-dominated area), which these defaults preserve.
//
// Units: energy pJ, area µm², time ns. Package sim aggregates per-inference
// energies and reports nJ.
package hw

import "fmt"

// Default circuit constants. Sources: ISAAC (Shafiee et al., ISCA'16)
// peripheral budgets and the Walden ADC figure-of-merit survey; MNSIM 2.0's
// default 1-bit-cell RRAM arrays.
const (
	// ADCFoMEnergy is the Walden figure of merit: pJ per conversion step.
	// E_adc(bits) = ADCFoMEnergy · 2^bits. 2 fJ/step gives 2.05 pJ for the
	// 10-bit ADC the paper configures (§4.1).
	ADCFoMEnergy = 0.002
	// ADCUnitArea scales ADC area with resolution: µm² per conversion
	// step. 3 µm²·2^10 ≈ 3072 µm² per 10-bit ADC (ISAAC's 8-bit ADC is
	// ~1200 µm²).
	ADCUnitArea = 3.0
	// ADCConvTime is one ADC conversion, ns (1.28 GS/s SAR ADC).
	ADCConvTime = 0.78

	// DACEnergy is one 1-bit DAC conversion, pJ.
	DACEnergy = 0.005
	// DACArea is one 1-bit DAC, µm².
	DACArea = 0.5

	// CellReadEnergy is one memristor cell read, pJ (≈2 fJ).
	CellReadEnergy = 0.002
	// CellArea is one 1T1R ReRAM cell, µm² (≈4F² at F = 40 nm plus access
	// transistor overhead).
	CellArea = 0.01
	// WordlineDelay is the per-row contribution to a crossbar read, ns.
	// Calibrated so the SXB32→SXB512 read-latency spread stays within the
	// ~1.2× band the paper's Table 5 reports.
	WordlineDelay = 0.005
	// XBFixedReadTime is the fixed part of a crossbar read, ns.
	XBFixedReadTime = 5.0

	// ShiftAddEnergy is one shift-and-add on a partial sum, pJ.
	ShiftAddEnergy = 0.01
	// ShiftAddArea is one shift-and-add unit, µm².
	ShiftAddArea = 140.0
	// ShiftAddDelay is one accumulate stage, ns.
	ShiftAddDelay = 0.1

	// BufferEnergyPerByte is one input/output buffer byte access, pJ.
	BufferEnergyPerByte = 0.05
	// BufferAreaPerTile is the fixed tile input+output buffer area, µm².
	BufferAreaPerTile = 2000.0

	// PoolEnergyPerOp is one pooling comparison/accumulate, pJ.
	PoolEnergyPerOp = 0.4
	// PoolAreaPerTile is the tile pooling module, µm².
	PoolAreaPerTile = 240.0

	// TileBusEnergyPerByte prices moving one byte over the intra-bank bus, pJ.
	TileBusEnergyPerByte = 0.08
	// TileMergeDelay is the per-hop latency of merging partial results
	// across tiles, ns.
	TileMergeDelay = 2.0

	// GlobalCtrlArea is the bank global controller, µm².
	GlobalCtrlArea = 30000.0

	// Weight programming (one-time, before inference). ReRAM SET/RESET
	// pulses are far costlier than reads: ~100 µA at ~2 V for ~10 ns per
	// pulse (≈2 pJ), with program-and-verify retries.
	CellWriteEnergy = 2.0 // pJ per programming pulse
	// CellWriteTime is one program-and-verify pulse, ns.
	CellWriteTime = 50.0
	// WriteVerifyRetries is the average program-and-verify iterations per
	// cell.
	WriteVerifyRetries = 2.0
	// WriteParallelism is how many cells a tile programs concurrently
	// (one row at a time per crossbar, bounded by write drivers).
	WriteParallelism = 32
)

// Config fixes the accelerator-wide hardware parameters (paper §4.1). The
// zero value is not usable; start from DefaultConfig.
type Config struct {
	ADCBits int // ADC resolution; 10 covers the tallest 576-row crossbars
	DACBits int // DAC precision; the paper fixes 1 (bit-serial inputs)
	// ColsPerADC is the bitline-to-ADC multiplexing ratio: one ADC serves
	// this many columns, sampling them in sequence within a cycle.
	ColsPerADC int
	// XBPerPE is the number of crossbars grouped per PE. With 1-bit cells
	// and 8-bit weights, 8 crossbars jointly store one weight (§4.1).
	XBPerPE int
	// PEsPerTile is the number of PEs in a tile (default 4; Fig. 11c
	// sweeps 8/16/32).
	PEsPerTile int
	// TilesPerBank bounds the bank (256×256 tiles by default).
	TilesPerBank int
	// WeightBits / InputBits are the quantization widths.
	WeightBits int
	InputBits  int
}

// DefaultConfig returns the paper's §4.1 configuration.
func DefaultConfig() Config {
	return Config{
		ADCBits:      10,
		DACBits:      1,
		ColsPerADC:   8,
		XBPerPE:      8,
		PEsPerTile:   4,
		TilesPerBank: 256 * 256,
		WeightBits:   8,
		InputBits:    8,
	}
}

// Validate reports a descriptive error for unusable configurations.
func (c Config) Validate() error {
	switch {
	case c.ADCBits < 1 || c.ADCBits > 16:
		return fmt.Errorf("hw: ADCBits %d out of range [1,16]", c.ADCBits)
	case c.DACBits != 1:
		return fmt.Errorf("hw: DACBits %d unsupported (paper uses 1-bit bit-serial DACs)", c.DACBits)
	case c.ColsPerADC < 1:
		return fmt.Errorf("hw: ColsPerADC %d must be >= 1", c.ColsPerADC)
	case c.XBPerPE != c.WeightBits:
		return fmt.Errorf("hw: XBPerPE %d must equal WeightBits %d (one crossbar per weight bit)", c.XBPerPE, c.WeightBits)
	case c.PEsPerTile < 1:
		return fmt.Errorf("hw: PEsPerTile %d must be >= 1", c.PEsPerTile)
	case c.TilesPerBank < 1:
		return fmt.Errorf("hw: TilesPerBank %d must be >= 1", c.TilesPerBank)
	case c.WeightBits < 1 || c.InputBits < 1:
		return fmt.Errorf("hw: WeightBits/InputBits must be >= 1")
	}
	return nil
}

// ADCEnergy returns one conversion's energy in pJ at the configured
// resolution.
func (c Config) ADCEnergy() float64 { return ADCFoMEnergy * float64(int(1)<<c.ADCBits) }

// ADCArea returns one ADC's area in µm² at the configured resolution.
func (c Config) ADCArea() float64 { return ADCUnitArea * float64(int(1)<<c.ADCBits) }
