package hw

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// JSON configuration support so the command-line tools can target
// non-default hardware (Fig. 11c-style variants) without recompiling.
// Fields absent from the JSON keep their DefaultConfig values.

// configJSON mirrors Config with pointer fields so "absent" is
// distinguishable from zero.
type configJSON struct {
	ADCBits      *int `json:"adc_bits"`
	DACBits      *int `json:"dac_bits"`
	ColsPerADC   *int `json:"cols_per_adc"`
	XBPerPE      *int `json:"xb_per_pe"`
	PEsPerTile   *int `json:"pes_per_tile"`
	TilesPerBank *int `json:"tiles_per_bank"`
	WeightBits   *int `json:"weight_bits"`
	InputBits    *int `json:"input_bits"`
}

// ReadConfig parses a JSON config from r, starting from DefaultConfig and
// overriding only the present fields, then validates.
func ReadConfig(r io.Reader) (Config, error) {
	cfg := DefaultConfig()
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var j configJSON
	if err := dec.Decode(&j); err != nil {
		return Config{}, fmt.Errorf("hw: parsing config: %w", err)
	}
	set := func(dst *int, src *int) {
		if src != nil {
			*dst = *src
		}
	}
	set(&cfg.ADCBits, j.ADCBits)
	set(&cfg.DACBits, j.DACBits)
	set(&cfg.ColsPerADC, j.ColsPerADC)
	set(&cfg.XBPerPE, j.XBPerPE)
	set(&cfg.PEsPerTile, j.PEsPerTile)
	set(&cfg.TilesPerBank, j.TilesPerBank)
	set(&cfg.WeightBits, j.WeightBits)
	set(&cfg.InputBits, j.InputBits)
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// LoadConfig reads a JSON config file; an empty path returns DefaultConfig.
func LoadConfig(path string) (Config, error) {
	if path == "" {
		return DefaultConfig(), nil
	}
	f, err := os.Open(path)
	if err != nil {
		return Config{}, err
	}
	defer f.Close()
	return ReadConfig(f)
}

// WriteJSON serializes the full config (all fields explicit).
func (c Config) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(configJSON{
		ADCBits:      &c.ADCBits,
		DACBits:      &c.DACBits,
		ColsPerADC:   &c.ColsPerADC,
		XBPerPE:      &c.XBPerPE,
		PEsPerTile:   &c.PEsPerTile,
		TilesPerBank: &c.TilesPerBank,
		WeightBits:   &c.WeightBits,
		InputBits:    &c.InputBits,
	})
}
