package hw

import (
	"math"
	"testing"
	"testing/quick"

	"autohet/internal/xbar"
)

func TestDefaultConfigValid(t *testing.T) {
	c := DefaultConfig()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// Paper §4.1: 10-bit ADC, 1-bit DAC, 8 XBs per PE, 4 PEs per tile,
	// 256×256 tiles per bank, 8-bit weights.
	if c.ADCBits != 10 || c.DACBits != 1 || c.XBPerPE != 8 || c.PEsPerTile != 4 ||
		c.TilesPerBank != 65536 || c.WeightBits != 8 || c.InputBits != 8 {
		t.Fatalf("DefaultConfig = %+v", c)
	}
}

func TestValidateRejections(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.ADCBits = 0 },
		func(c *Config) { c.ADCBits = 17 },
		func(c *Config) { c.DACBits = 2 },
		func(c *Config) { c.ColsPerADC = 0 },
		func(c *Config) { c.XBPerPE = 4 }, // must equal WeightBits
		func(c *Config) { c.PEsPerTile = 0 },
		func(c *Config) { c.TilesPerBank = 0 },
		func(c *Config) { c.WeightBits = 0; c.XBPerPE = 0 },
	}
	for i, mutate := range mutations {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d validated but should not", i)
		}
	}
}

func TestADCEnergyScalesWithBits(t *testing.T) {
	c := DefaultConfig()
	if math.Abs(c.ADCEnergy()-0.002*1024) > 1e-12 {
		t.Fatalf("10-bit ADC energy = %v, want %v", c.ADCEnergy(), 0.002*1024)
	}
	c8 := c
	c8.ADCBits = 8
	if c.ADCEnergy() != 4*c8.ADCEnergy() {
		t.Fatal("ADC energy must scale 2^bits")
	}
	if c.ADCArea() != 4*c8.ADCArea() {
		t.Fatal("ADC area must scale 2^bits")
	}
}

func TestADCsPerXB(t *testing.T) {
	c := DefaultConfig() // 8 cols per ADC
	cases := []struct {
		shape xbar.Shape
		want  int
	}{
		{xbar.Square(32), 4},
		{xbar.Square(64), 8},
		{xbar.Rect(36, 32), 4},
		{xbar.Rect(576, 512), 64},
		{xbar.Rect(1, 9), 2}, // rounds up
	}
	for _, cs := range cases {
		if got := c.ADCsPerXB(cs.shape); got != cs.want {
			t.Errorf("ADCsPerXB(%v) = %d, want %d", cs.shape, got, cs.want)
		}
	}
}

func TestXBAreaComposition(t *testing.T) {
	c := DefaultConfig()
	s := xbar.Square(64)
	want := 64*64*CellArea + 64*DACArea + 8*c.ADCArea() + 8*ShiftAddArea
	if math.Abs(c.XBArea(s)-want) > 1e-9 {
		t.Fatalf("XBArea = %v, want %v", c.XBArea(s), want)
	}
}

func TestTileAreaComposition(t *testing.T) {
	c := DefaultConfig()
	s := xbar.Square(32)
	want := 4*8*c.XBArea(s) + BufferAreaPerTile + PoolAreaPerTile
	if math.Abs(c.TileArea(s)-want) > 1e-9 {
		t.Fatalf("TileArea = %v, want %v", c.TileArea(s), want)
	}
}

// The per-cell area cost must shrink as crossbars grow (periphery amortized)
// — this is the driver of the paper's Table 5 area trend.
func TestAreaPerCellDecreasesWithSize(t *testing.T) {
	c := DefaultConfig()
	prev := math.Inf(1)
	for _, s := range xbar.SquareCandidates() {
		perCell := c.XBArea(s) / float64(s.Cells())
		if perCell >= prev {
			t.Fatalf("area per cell did not decrease at %v: %v >= %v", s, perCell, prev)
		}
		prev = perCell
	}
}

func TestXBReadLatencyGrowsWithRows(t *testing.T) {
	c := DefaultConfig()
	l32 := c.XBReadLatency(xbar.Square(32))
	l512 := c.XBReadLatency(xbar.Square(512))
	if l512 <= l32 {
		t.Fatalf("read latency must grow with rows: %v vs %v", l32, l512)
	}
	// But sublinearly overall: the fixed+mux part dominates for small XBs.
	if l512 > 4*l32 {
		t.Fatalf("latency spread too large: %v vs %v", l32, l512)
	}
}

func TestMergeLatency(t *testing.T) {
	c := DefaultConfig()
	if c.MergeLatency(1, 1) != 0 {
		t.Fatal("single band, single tile must cost nothing")
	}
	if got := c.MergeLatency(8, 1); math.Abs(got-3*ShiftAddDelay) > 1e-12 {
		t.Fatalf("MergeLatency(8,1) = %v, want %v", got, 3*ShiftAddDelay)
	}
	if got := c.MergeLatency(1, 4); math.Abs(got-2*TileMergeDelay) > 1e-12 {
		t.Fatalf("MergeLatency(1,4) = %v", got)
	}
	// Non-power-of-two rounds up.
	if got := c.MergeLatency(5, 1); math.Abs(got-3*ShiftAddDelay) > 1e-12 {
		t.Fatalf("MergeLatency(5,1) = %v", got)
	}
}

// Property: area and latency are positive and monotone in each dimension.
func TestAreaLatencyMonotoneProperty(t *testing.T) {
	c := DefaultConfig()
	f := func(rRaw, cRaw uint16) bool {
		r := 1 + int(rRaw)%1024
		cc := 1 + int(cRaw)%1024
		s := xbar.Rect(r, cc)
		bigger := xbar.Rect(r+9, cc+8)
		if c.XBArea(s) <= 0 || c.XBReadLatency(s) <= 0 {
			return false
		}
		return c.XBArea(bigger) > c.XBArea(s) && c.XBReadLatency(bigger) >= c.XBReadLatency(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
