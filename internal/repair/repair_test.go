package repair

import (
	"math"
	"math/rand"
	"testing"

	"autohet/internal/fault"
	"autohet/internal/mat"
	"autohet/internal/quant"
)

// randomQuantized builds a reproducible random quantized matrix.
func randomQuantized(t *testing.T, rows, cols int, seed int64) *quant.Matrix {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	w := mat.New(rows, cols)
	for i := range w.Data {
		w.Data[i] = rng.NormFloat64()
	}
	return quant.QuantizeWeights(w)
}

// oneRegion covers the whole matrix as a single crossbar.
func oneRegion(rows, cols int) []Region { return []Region{{R0: 0, R1: rows, C0: 0, C1: cols}} }

func TestMarchTestMatchesApplyStuckAt(t *testing.T) {
	const rows, cols = 12, 9
	w := randomQuantized(t, rows, cols, 3)
	ideal := w.Slices()
	fm := &fault.Model{StuckAtZero: 0.02, StuckAtOne: 0.03, Seed: 7}
	faulted := fm.ApplyStuckAt(ideal, 5)
	truth := MarchTest(fm, 5, rows, cols, len(ideal))
	if truth.Empty() {
		t.Fatal("march test found nothing at 5% fault rate")
	}
	// Every cell where the faulted planes disagree with the ideal ones must
	// appear in the march-test map with the observed stuck value.
	at := map[[3]int]uint8{}
	for _, c := range truth.Cells {
		at[[3]int{c.Plane, c.Row, c.Col}] = c.Stuck
	}
	for pi := range ideal {
		for i := range ideal[pi].Bits {
			if ideal[pi].Bits[i] != faulted[pi].Bits[i] {
				s, ok := at[[3]int{pi, i / cols, i % cols}]
				if !ok {
					t.Fatalf("divergent cell (plane %d, idx %d) missing from march map", pi, i)
				}
				if s != faulted[pi].Bits[i] {
					t.Fatalf("march map stuck=%d, array reads %d", s, faulted[pi].Bits[i])
				}
			}
		}
	}
	// And every mapped cell must really be pinned at its stuck value.
	for _, c := range truth.Cells {
		if faulted[c.Plane].Bits[c.Row*cols+c.Col] != c.Stuck {
			t.Fatalf("cell %+v not pinned in the faulted array", c)
		}
	}
	if MarchTest(nil, 5, rows, cols, 8).Count() != 0 {
		t.Fatal("nil model must yield an empty map")
	}
	if MarchTest(&fault.Model{ReadNoiseSigma: 1}, 5, rows, cols, 8).Count() != 0 {
		t.Fatal("noise-only model must yield an empty stuck map")
	}
}

func TestThinDropsRoughlyMissRate(t *testing.T) {
	f := &FaultMap{Rows: 100, Cols: 100, Planes: 1}
	for i := 0; i < 100*100; i++ {
		f.Cells = append(f.Cells, Cell{Plane: 0, Row: i / 100, Col: i % 100})
	}
	thinned := f.Thin(0.3, 11)
	frac := float64(thinned.Count()) / float64(f.Count())
	if math.Abs(frac-0.7) > 0.05 {
		t.Fatalf("thin kept %.2f, want ~0.70", frac)
	}
	if f.Thin(0, 1) != f {
		t.Fatal("zero miss rate must return the map unchanged")
	}
}

// Full coverage ⇒ bit-exact: with enough spare columns every plane equals
// the ideal stack.
func TestApplyFullCoverageIsBitExact(t *testing.T) {
	const rows, cols = 24, 16
	w := randomQuantized(t, rows, cols, 9)
	ideal := w.Slices()
	fm := &fault.Model{StuckAtZero: 0.01, StuckAtOne: 0.01, Seed: 13}
	faulted := fm.ApplyStuckAt(ideal, 1)
	truth := MarchTest(fm, 1, rows, cols, len(ideal))
	repaired, st, err := Apply(ideal, faulted, truth, truth, oneRegion(rows, cols), Provision{SpareCols: cols})
	if err != nil {
		t.Fatal(err)
	}
	if !st.FullyRepaired || st.UncoveredFaults != 0 {
		t.Fatalf("spares cover every column yet stats = %v", st)
	}
	for pi := range ideal {
		for i := range ideal[pi].Bits {
			if repaired[pi].Bits[i] != ideal[pi].Bits[i] {
				t.Fatalf("plane %d cell %d not restored", pi, i)
			}
		}
	}
	// Inputs must be untouched.
	refaulted := fm.ApplyStuckAt(ideal, 1)
	for pi := range faulted {
		for i := range faulted[pi].Bits {
			if faulted[pi].Bits[i] != refaulted[pi].Bits[i] {
				t.Fatal("Apply modified its faulted input")
			}
		}
	}
}

// A spare crossbar absorbs a region whose faulty columns overflow the spare
// columns.
func TestApplySpareCrossbarAbsorbsRegion(t *testing.T) {
	const rows, cols = 16, 12
	w := randomQuantized(t, rows, cols, 21)
	ideal := w.Slices()
	fm := &fault.Model{StuckAtZero: 0.05, StuckAtOne: 0.05, Seed: 17}
	faulted := fm.ApplyStuckAt(ideal, 2)
	truth := MarchTest(fm, 2, rows, cols, len(ideal))
	repaired, st, err := Apply(ideal, faulted, truth, truth, oneRegion(rows, cols), Provision{SpareCols: 1, SpareXBs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.RemappedXBs != 1 || !st.FullyRepaired {
		t.Fatalf("expected a whole-crossbar remap, got %v", st)
	}
	for pi := range ideal {
		for i := range ideal[pi].Bits {
			if repaired[pi].Bits[i] != ideal[pi].Bits[i] {
				t.Fatalf("plane %d cell %d not restored by spare crossbar", pi, i)
			}
		}
	}
}

// Exhausted spares: every masked cell must land at least as close to its
// ideal weight as the raw faulted encoding (strictly closer on aggregate),
// and the stats must count the residue.
func TestApplyMaskingBoundsCellError(t *testing.T) {
	const rows, cols = 32, 8
	w := randomQuantized(t, rows, cols, 33)
	ideal := w.Slices()
	fm := &fault.Model{StuckAtZero: 0.04, StuckAtOne: 0.04, Seed: 23}
	faulted := fm.ApplyStuckAt(ideal, 3)
	truth := MarchTest(fm, 3, rows, cols, len(ideal))
	if truth.Empty() {
		t.Fatal("need faults to mask")
	}
	repaired, st, err := Apply(ideal, faulted, truth, truth, oneRegion(rows, cols), Provision{})
	if err != nil {
		t.Fatal(err)
	}
	if st.MaskedCells == 0 || st.FullyRepaired || st.UncoveredFaults != st.TrueFaults {
		t.Fatalf("no spares: stats %v", st)
	}
	value := func(planes []*quant.BitPlane, row, col int) int {
		v := 0
		for _, p := range planes {
			v += int(p.Bits[row*cols+col]) << uint(p.Bit)
		}
		return v
	}
	// Per cell: the faulted encoding is one feasible masking, so the masked
	// error can never exceed the raw fault error; on aggregate it must win
	// strictly.
	var maskedErr, faultedErr float64
	seen := map[[2]int]bool{}
	for _, c := range truth.Cells {
		key := [2]int{c.Row, c.Col}
		if seen[key] {
			continue
		}
		seen[key] = true
		want := value(ideal, c.Row, c.Col)
		me := math.Abs(float64(value(repaired, c.Row, c.Col) - want))
		fe := math.Abs(float64(value(faulted, c.Row, c.Col) - want))
		if me > fe {
			t.Fatalf("cell (%d,%d): masked error %v exceeds raw fault error %v", c.Row, c.Col, me, fe)
		}
		maskedErr += me
		faultedErr += fe
	}
	if maskedErr >= faultedErr {
		t.Fatalf("masking (%.1f total units) must beat raw faults (%.1f)", maskedErr, faultedErr)
	}
	// And it should win big: the free planes approximate the ideal weight
	// to within a few units on average (stuck MSBs carry irreducible
	// error), far below the ~32-unit average of a raw random bit flip.
	if n := float64(len(seen)); maskedErr/n > 8 {
		t.Fatalf("masked cells average %.2f units from ideal, want ≤ 8", maskedErr/n)
	}
}

// Imperfect detection leaves residual faults uncovered; a second sweep with
// a fresh seed catches some of them (geometric decay).
func TestApplyImperfectDetectionLeavesResidue(t *testing.T) {
	const rows, cols = 24, 12
	w := randomQuantized(t, rows, cols, 41)
	ideal := w.Slices()
	fm := &fault.Model{StuckAtZero: 0.03, StuckAtOne: 0.02, Seed: 29}
	faulted := fm.ApplyStuckAt(ideal, 4)
	pol := Policy{Provision: Provision{SpareCols: cols}, DetectMissRate: 0.5, DetectSeed: 1}
	truth, detected := pol.Detect(fm, 4, rows, cols, len(ideal))
	if detected.Count() >= truth.Count() {
		t.Fatalf("miss rate 0.5 detected %d of %d", detected.Count(), truth.Count())
	}
	_, st, err := Apply(ideal, faulted, detected, truth, oneRegion(rows, cols), pol.Provision)
	if err != nil {
		t.Fatal(err)
	}
	// Columns with at least one detected cell are fully remapped, so the
	// uncovered count is at most the cells in completely-missed columns.
	if st.FullyRepaired && st.UncoveredFaults != 0 {
		t.Fatalf("inconsistent stats %v", st)
	}
	if st.Detected != detected.Count() || st.TrueFaults != truth.Count() {
		t.Fatalf("stats miscount: %v", st)
	}
}

func TestProvisionMaxCellRate(t *testing.T) {
	p := Provision{SpareCols: 8}
	r := p.MaxCellRate(128, 128, 8, 16)
	if r <= 0 || r >= 1 {
		t.Fatalf("rate %v outside (0,1)", r)
	}
	// More spares cover more.
	if p2 := (Provision{SpareCols: 16}); p2.MaxCellRate(128, 128, 8, 16) <= r {
		t.Fatal("doubling spares must raise the coverable rate")
	}
	if (Provision{}).MaxCellRate(128, 128, 8, 16) != 0 {
		t.Fatal("no spares cover nothing")
	}
	if (Provision{SpareCols: 1 << 20}).MaxCellRate(128, 128, 8, 16) != 1 {
		t.Fatal("overwhelming spares cover everything")
	}
	if p.MaxCellRate(0, 0, 0, 0) != 0 {
		t.Fatal("degenerate geometry covers nothing")
	}
}

func TestPolicyAndProvisionValidate(t *testing.T) {
	if err := (Policy{DetectMissRate: 0.5}).Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Policy{
		{Provision: Provision{SpareCols: -1}},
		{Provision: Provision{SpareXBs: -2}},
		{DetectMissRate: -0.1},
		{DetectMissRate: 1},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("policy %+v must be rejected", bad)
		}
	}
}

func TestApplyShapeValidation(t *testing.T) {
	w := randomQuantized(t, 4, 4, 1)
	ideal := w.Slices()
	empty := &FaultMap{Rows: 4, Cols: 4, Planes: len(ideal)}
	if _, _, err := Apply(ideal, ideal[:4], empty, empty, oneRegion(4, 4), Provision{}); err == nil {
		t.Fatal("plane-count mismatch must error")
	}
	bad := &FaultMap{Rows: 9, Cols: 9, Planes: len(ideal)}
	if _, _, err := Apply(ideal, ideal, bad, bad, oneRegion(4, 4), Provision{}); err == nil {
		t.Fatal("shape mismatch must error")
	}
	if _, _, err := Apply(nil, nil, empty, empty, nil, Provision{}); err == nil {
		t.Fatal("empty stack must error")
	}
}
