// Package repair is the fault-tolerance half of the fault story: package
// fault injects ReRAM non-idealities and sim measures the damage; this
// package detects a crossbar's stuck-at fault map (march-test readback),
// repairs it by remapping affected weight columns onto provisioned spare
// columns and whole crossbars onto spare crossbars, and degrades gracefully
// when spares run out by masking known-bad cells — reprogramming their free
// bit planes to the closest representable value to the ideal weight — so
// the residual error is bounded instead of arbitrary. The robustness
// literature (ARAS-style adaptive re-mapping, multi-objective robust
// crossbar design) treats tolerance as a design problem; spare provisioning
// is therefore part of the accelerator plan (accel.PlanSpec.Spares) and its
// area is charged against utilization and RUE.
package repair

import (
	"fmt"
	"math"
)

// Provision describes the spare redundancy built into every crossbar/tile.
// The zero value provisions nothing.
type Provision struct {
	// SpareCols is the number of spare bitline columns provisioned per
	// crossbar. Remapping a faulty weight column onto a (tested-pristine)
	// spare repairs every fault in that column.
	SpareCols int
	// SpareXBs is the number of spare whole crossbars (PEs). In an
	// accel.Plan it is provisioned per occupied tile; in Apply it is the
	// total budget available to the call. A spare crossbar absorbs a region
	// whose faulty-column count exceeds SpareCols.
	SpareXBs int
}

// Zero reports whether no spares are provisioned.
func (p Provision) Zero() bool { return p.SpareCols == 0 && p.SpareXBs == 0 }

// Validate rejects negative provisions.
func (p Provision) Validate() error {
	if p.SpareCols < 0 || p.SpareXBs < 0 {
		return fmt.Errorf("repair: negative provision %+v", p)
	}
	return nil
}

// MaxCellRate estimates the largest per-cell stuck-at rate the provision can
// fully absorb on a grid of nXBs crossbars with the given per-crossbar
// geometry (rows wordlines, cols data bitlines, planes bit-slice crossbars
// per weight). A column is faulty when any of its rows·planes cells is
// stuck, so the expected faulty-column fraction at cell rate p is
// 1-(1-p)^(rows·planes); spares cover SpareCols/cols of the columns plus
// SpareXBs/nXBs whole crossbars. Solving for p gives the coverable rate.
func (p Provision) MaxCellRate(rows, cols, planes, nXBs int) float64 {
	if rows <= 0 || cols <= 0 || planes <= 0 || nXBs <= 0 {
		return 0
	}
	cover := float64(p.SpareCols) / float64(cols)
	cover += float64(p.SpareXBs) / float64(nXBs)
	if cover >= 1 {
		return 1
	}
	if cover <= 0 {
		return 0
	}
	return 1 - math.Pow(1-cover, 1/float64(rows*planes))
}

// Policy bundles a spare provision with the detection behavior driving its
// use.
type Policy struct {
	Provision
	// DetectMissRate is the probability the march test misses a genuinely
	// stuck cell in one sweep (imperfect readback margins). Repeated sweeps
	// are independent, so misses decay geometrically over an online health
	// loop.
	DetectMissRate float64
	// DetectSeed makes imperfect detection reproducible.
	DetectSeed int64
}

// Validate rejects malformed policies.
func (p Policy) Validate() error {
	if err := p.Provision.Validate(); err != nil {
		return err
	}
	if p.DetectMissRate < 0 || p.DetectMissRate >= 1 {
		return fmt.Errorf("repair: detect miss rate %v outside [0,1)", p.DetectMissRate)
	}
	return nil
}

// Cell is one stuck memristor: bit plane index, logical weight-matrix
// position, and the value it is pinned at.
type Cell struct {
	Plane, Row, Col int
	Stuck           uint8
}

// FaultMap is the set of stuck cells of one layer's bit-plane stack, as
// produced by a march test (ground truth) or a thinned detection sweep.
type FaultMap struct {
	Rows, Cols, Planes int
	Cells              []Cell
}

// Count returns the number of stuck cells in the map.
func (f *FaultMap) Count() int { return len(f.Cells) }

// Empty reports whether the map holds no faults.
func (f *FaultMap) Empty() bool { return f == nil || len(f.Cells) == 0 }

// CellRate returns the stuck-cell fraction of the map.
func (f *FaultMap) CellRate() float64 {
	n := f.Rows * f.Cols * f.Planes
	if n == 0 {
		return 0
	}
	return float64(len(f.Cells)) / float64(n)
}

// Region is one crossbar's window of the unfolded weight matrix: rows
// [R0,R1) × columns [C0,C1). Regions passed to Apply must partition the
// matrix (every cell in exactly one region), which the band/column-group
// decomposition of an xbar.Mapping guarantees.
type Region struct {
	R0, R1, C0, C1 int
}

func (r Region) contains(row, col int) bool {
	return row >= r.R0 && row < r.R1 && col >= r.C0 && col < r.C1
}

// Stats reports what one detect-and-repair pass did.
type Stats struct {
	// TrueFaults is the ground-truth stuck-cell count; Detected is how many
	// the (possibly imperfect) march test found.
	TrueFaults, Detected int
	// RemappedCols counts weight columns relocated onto spare columns;
	// RemappedXBs counts whole crossbar regions relocated onto spare
	// crossbars.
	RemappedCols, RemappedXBs int
	// MaskedCells counts detected stuck cells that could not be remapped;
	// their weights were reprogrammed to the closest representable value
	// the stuck bits allow.
	MaskedCells int
	// UncoveredFaults counts ground-truth stuck cells left on live hardware
	// (masked or missed) — the residual the health score tracks.
	UncoveredFaults int
	// FullyRepaired is true when every ground-truth fault was relocated
	// onto pristine spares: the repaired array is bit-exact with the ideal
	// one.
	FullyRepaired bool
}

// String summarizes the pass.
func (s Stats) String() string {
	return fmt.Sprintf("repair: %d/%d faults detected, %d cols + %d XBs remapped, %d masked, %d uncovered",
		s.Detected, s.TrueFaults, s.RemappedCols, s.RemappedXBs, s.MaskedCells, s.UncoveredFaults)
}
