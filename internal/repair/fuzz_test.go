package repair

import (
	"testing"

	"autohet/internal/fault"
	"autohet/internal/quant"
)

// FuzzMarchTest drives the march-test detection path with random array
// shapes, stuck-at rates, seeds, and detection miss rates, checking the
// invariants the repair pipeline leans on: the truth map is deterministic
// and genuinely describes the cells ApplyStuckAt pins, detection is a
// subset of truth (no phantom faults), and thinning is deterministic.
func FuzzMarchTest(f *testing.F) {
	f.Add(uint8(8), uint8(8), uint8(4), uint16(500), uint16(300), uint8(64), int64(1), int64(3), []byte{0xa5, 0x3c})
	f.Add(uint8(1), uint8(1), uint8(1), uint16(0), uint16(0), uint8(0), int64(0), int64(0), []byte{})
	f.Add(uint8(31), uint8(7), uint8(8), uint16(9999), uint16(9999), uint8(255), int64(-5), int64(1<<40), []byte{0xff})
	f.Fuzz(func(t *testing.T, rowsRaw, colsRaw, planesRaw uint8, zeroRaw, oneRaw uint16, missRaw uint8, seed, layerKey int64, data []byte) {
		rows := int(rowsRaw)%32 + 1
		cols := int(colsRaw)%32 + 1
		planes := int(planesRaw)%8 + 1
		// Rates in [0, 0.5] each so StuckAtZero+StuckAtOne ≤ 1 always validates.
		z := float64(zeroRaw%10001) / 20000
		o := float64(oneRaw%10001) / 20000
		miss := float64(missRaw) / 256 // [0, 1)
		m := &fault.Model{StuckAtZero: z, StuckAtOne: o, Seed: seed}
		if err := m.Validate(); err != nil {
			t.Fatalf("clamped model rejected: %v", err)
		}

		truth := MarchTest(m, layerKey, rows, cols, planes)
		again := MarchTest(m, layerKey, rows, cols, planes)
		if truth.Count() != again.Count() {
			t.Fatalf("march test nondeterministic: %d vs %d cells", truth.Count(), again.Count())
		}
		stuck := make(map[Cell]bool, truth.Count())
		for i, c := range truth.Cells {
			if again.Cells[i] != c {
				t.Fatalf("march test nondeterministic at cell %d: %+v vs %+v", i, c, again.Cells[i])
			}
			if c.Plane < 0 || c.Plane >= planes || c.Row < 0 || c.Row >= rows || c.Col < 0 || c.Col >= cols {
				t.Fatalf("cell %+v outside %dx%dx%d array", c, rows, cols, planes)
			}
			key := Cell{Plane: c.Plane, Row: c.Row, Col: c.Col}
			if stuck[key] {
				t.Fatalf("cell %+v reported twice", c)
			}
			stuck[key] = true
		}

		// Ground truth: program an arbitrary pattern and read it back through
		// the model. Cells in the map must read their stuck value, cells off
		// the map must read what was programmed.
		pattern := patternPlanes(rows, cols, planes, 0)
		for b, p := range pattern {
			for i := range p.Bits {
				if len(data) > 0 && data[(b*len(p.Bits)+i)%len(data)]&1 == 1 {
					p.Bits[i] = 1
				}
			}
		}
		read := m.ApplyStuckAt(clonePlanes(pattern), layerKey)
		want := make(map[Cell]uint8, truth.Count())
		for _, c := range truth.Cells {
			want[Cell{Plane: c.Plane, Row: c.Row, Col: c.Col}] = c.Stuck
		}
		for b := 0; b < planes; b++ {
			for i, bit := range read[b].Bits {
				key := Cell{Plane: b, Row: i / cols, Col: i % cols}
				if s, ok := want[key]; ok {
					if bit != s {
						t.Fatalf("cell %+v in map as stuck-%d but reads %d", key, s, bit)
					}
				} else if bit != pattern[b].Bits[i] {
					t.Fatalf("cell %+v not in map but reads %d after programming %d", key, bit, pattern[b].Bits[i])
				}
			}
		}

		// Detection: a thinned sweep never reports a cell the array doesn't
		// have (detected ⊆ injected), and is reproducible in its seed.
		p := Policy{DetectMissRate: miss, DetectSeed: seed}
		gotTruth, detected := p.Detect(m, layerKey, rows, cols, planes)
		if gotTruth.Count() != truth.Count() {
			t.Fatalf("Detect truth %d cells, MarchTest %d", gotTruth.Count(), truth.Count())
		}
		if detected.Count() > truth.Count() {
			t.Fatalf("detected %d faults, only %d injected", detected.Count(), truth.Count())
		}
		for _, c := range detected.Cells {
			if !stuck[Cell{Plane: c.Plane, Row: c.Row, Col: c.Col}] {
				t.Fatalf("detected phantom fault %+v", c)
			}
		}
		if _, d2 := p.Detect(m, layerKey, rows, cols, planes); d2.Count() != detected.Count() {
			t.Fatalf("detection nondeterministic: %d vs %d cells", detected.Count(), d2.Count())
		}
		if miss == 0 && detected.Count() != truth.Count() {
			t.Fatalf("lossless sweep dropped cells: %d of %d", detected.Count(), truth.Count())
		}
	})
}

// clonePlanes deep-copies a bit-plane stack so read-back comparisons see the
// original programming.
func clonePlanes(in []*quant.BitPlane) []*quant.BitPlane {
	out := make([]*quant.BitPlane, len(in))
	for i, p := range in {
		c := &quant.BitPlane{Rows: p.Rows, Cols: p.Cols, Bit: p.Bit, Bits: make([]uint8, len(p.Bits))}
		copy(c.Bits, p.Bits)
		out[i] = c
	}
	return out
}
