package repair

import (
	"fmt"
	"sort"

	"autohet/internal/quant"
)

// Apply performs one repair pass over a faulted bit-plane stack. ideal holds
// the weights as programmed, faulted what the defective array actually
// stores (fault.Model.ApplyStuckAt), detected the fault map the march test
// found, and truth the ground-truth map (equal to detected under perfect
// detection). regions partitions the weight matrix into per-crossbar
// windows. The repair policy, per region:
//
//  1. Every detected faulty column is remapped onto one of the region's
//     prov.SpareCols spare columns (tested-pristine, so the column's bits —
//     including faults detection missed — become ideal).
//  2. A region with more faulty columns than spare columns is relocated
//     wholesale onto a spare crossbar while the shared prov.SpareXBs budget
//     lasts.
//  3. When both spares are exhausted the worst columns take the spare
//     columns and the remaining detected cells are masked: their free bit
//     planes are reprogrammed to the closest representable value to the
//     ideal weight, so the cell's error is bounded by the stuck bits'
//     irreducible discrepancy instead of an arbitrary weight corruption —
//     never worse than the unrepaired encoding, usually far better.
//
// The returned planes are a fresh copy; inputs are not modified.
func Apply(ideal, faulted []*quant.BitPlane, detected, truth *FaultMap, regions []Region, prov Provision) ([]*quant.BitPlane, Stats, error) {
	var st Stats
	if len(ideal) == 0 || len(ideal) != len(faulted) {
		return nil, st, fmt.Errorf("repair: %d ideal planes vs %d faulted", len(ideal), len(faulted))
	}
	if detected.Planes != len(ideal) || truth.Planes != len(ideal) {
		return nil, st, fmt.Errorf("repair: fault maps cover %d/%d planes, stack has %d",
			detected.Planes, truth.Planes, len(ideal))
	}
	rows, cols := ideal[0].Rows, ideal[0].Cols
	if detected.Rows != rows || detected.Cols != cols {
		return nil, st, fmt.Errorf("repair: fault map %dx%d, planes %dx%d", detected.Rows, detected.Cols, rows, cols)
	}
	st.TrueFaults = truth.Count()
	st.Detected = detected.Count()

	repaired := make([]*quant.BitPlane, len(faulted))
	for i, p := range faulted {
		c := &quant.BitPlane{Rows: p.Rows, Cols: p.Cols, Bit: p.Bit, Bits: make([]uint8, len(p.Bits))}
		copy(c.Bits, p.Bits)
		repaired[i] = c
	}
	if detected.Empty() && truth.Empty() {
		st.FullyRepaired = true
		return repaired, st, nil
	}

	byCol := make([][]Cell, cols)
	for _, c := range detected.Cells {
		byCol[c.Col] = append(byCol[c.Col], c)
	}
	truthAt := make(map[[3]int]uint8, len(truth.Cells))
	for _, c := range truth.Cells {
		truthAt[[3]int{c.Plane, c.Row, c.Col}] = c.Stuck
	}

	spareXBsLeft := prov.SpareXBs
	regionRemapped := make([]bool, len(regions))
	colRemapped := make(map[[2]int]bool)

	type faultyCol struct {
		col   int
		cells []Cell
	}
	for ri, rg := range regions {
		var faulty []faultyCol
		for j := rg.C0; j < rg.C1 && j < cols; j++ {
			var cells []Cell
			for _, c := range byCol[j] {
				if c.Row >= rg.R0 && c.Row < rg.R1 {
					cells = append(cells, c)
				}
			}
			if len(cells) > 0 {
				faulty = append(faulty, faultyCol{j, cells})
			}
		}
		if len(faulty) == 0 {
			continue
		}
		if len(faulty) > prov.SpareCols && spareXBsLeft > 0 {
			// Relocate the whole region onto a spare crossbar.
			spareXBsLeft--
			st.RemappedXBs++
			regionRemapped[ri] = true
			for pi, p := range repaired {
				for i := rg.R0; i < rg.R1; i++ {
					copy(p.Bits[i*cols+rg.C0:i*cols+rg.C1], ideal[pi].Bits[i*cols+rg.C0:i*cols+rg.C1])
				}
			}
			continue
		}
		remap := faulty
		var masked []faultyCol
		if len(faulty) > prov.SpareCols {
			// Spares exhausted: repair the worst columns, mask the rest.
			sort.Slice(faulty, func(a, b int) bool {
				if len(faulty[a].cells) != len(faulty[b].cells) {
					return len(faulty[a].cells) > len(faulty[b].cells)
				}
				return faulty[a].col < faulty[b].col
			})
			remap, masked = faulty[:prov.SpareCols], faulty[prov.SpareCols:]
		}
		for _, f := range remap {
			for pi, p := range repaired {
				for i := rg.R0; i < rg.R1; i++ {
					p.Bits[i*cols+f.col] = ideal[pi].Bits[i*cols+f.col]
				}
			}
			colRemapped[[2]int{ri, f.col}] = true
			st.RemappedCols++
		}
		for _, f := range masked {
			byRow := map[int]map[int]uint8{}
			for _, c := range f.cells {
				if byRow[c.Row] == nil {
					byRow[c.Row] = map[int]uint8{}
				}
				byRow[c.Row][c.Plane] = c.Stuck
			}
			for row, stuck := range byRow {
				maskCell(repaired, ideal, row, f.col, stuck, truthAt)
				st.MaskedCells += len(stuck)
			}
		}
	}

	for _, c := range truth.Cells {
		ri := regionOf(regions, c.Row, c.Col)
		if ri >= 0 && (regionRemapped[ri] || colRemapped[[2]int{ri, c.Col}]) {
			continue
		}
		st.UncoveredFaults++
	}
	st.FullyRepaired = st.UncoveredFaults == 0
	return repaired, st, nil
}

// maskCell reprograms the weight at (row, col) to the closest representable
// value to the ideal one given the detected stuck bits: stuck contributions
// are forced, and the free planes are chosen by exhaustive search (≤ 2^8
// subsets for 8-bit weights) to minimize the residual. The faulted encoding
// — ideal free bits plus stuck overrides — is among the candidates, so the
// masked cell's error never exceeds the unrepaired one. Writes land through
// the physical array, so ground-truth stuck cells detection missed keep
// their stuck value regardless of what we program.
func maskCell(repaired, ideal []*quant.BitPlane, row, col int, stuck map[int]uint8, truthAt map[[3]int]uint8) {
	idx := row*repaired[0].Cols + col
	target, forced := 0, 0
	var free []int
	for pi, p := range ideal {
		target += int(p.Bits[idx]) << uint(p.Bit)
		if s, isStuck := stuck[pi]; isStuck {
			forced += int(s) << uint(repaired[pi].Bit)
		} else {
			free = append(free, pi)
		}
	}
	bestMask, bestErr := 0, abs(forced-target)
	for mask := 1; mask < 1<<uint(len(free)); mask++ {
		v := forced
		for bi, pi := range free {
			if mask&(1<<uint(bi)) != 0 {
				v += 1 << uint(repaired[pi].Bit)
			}
		}
		if e := abs(v - target); e < bestErr {
			bestMask, bestErr = mask, e
		}
	}
	bits := make([]uint8, len(repaired))
	for pi, s := range stuck {
		bits[pi] = s
	}
	for bi, pi := range free {
		if bestMask&(1<<uint(bi)) != 0 {
			bits[pi] = 1
		}
	}
	for pi := range repaired {
		b := bits[pi]
		if s, isStuck := truthAt[[3]int{pi, row, col}]; isStuck {
			b = s
		}
		repaired[pi].Bits[idx] = b
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// regionOf returns the index of the region containing (row, col), or -1.
func regionOf(regions []Region, row, col int) int {
	for ri, rg := range regions {
		if rg.contains(row, col) {
			return ri
		}
	}
	return -1
}
