package repair

import (
	"math/rand"

	"autohet/internal/fault"
	"autohet/internal/quant"
)

// March-test fault detection. A real controller programs known bit patterns
// into the array and reads them back: a cell that reads 0 after an all-ones
// write is stuck at zero, a cell that reads 1 after an all-zeros write is
// stuck at one. fault.Model draws each cell's fate from an RNG keyed only on
// (Seed, layerKey) and the plane iteration order — the same physical cells
// fail regardless of what is programmed — so replaying the model over test
// patterns reads back exactly the fault map the weights will suffer.

// MarchTest returns the ground-truth stuck-at fault map of the layerKey'd
// crossbar stack under m: rows×cols cells on each of planes bit-slice
// crossbars. A nil or stuck-free model yields an empty map.
func MarchTest(m *fault.Model, layerKey int64, rows, cols, planes int) *FaultMap {
	fm := &FaultMap{Rows: rows, Cols: cols, Planes: planes}
	if m == nil || m.CellFaultRate() == 0 {
		return fm
	}
	readOnes := m.ApplyStuckAt(patternPlanes(rows, cols, planes, 1), layerKey)
	readZeros := m.ApplyStuckAt(patternPlanes(rows, cols, planes, 0), layerKey)
	for b := 0; b < planes; b++ {
		po, pz := readOnes[b], readZeros[b]
		for i, bit := range po.Bits {
			switch {
			case bit == 0:
				fm.Cells = append(fm.Cells, Cell{Plane: b, Row: i / cols, Col: i % cols, Stuck: 0})
			case pz.Bits[i] == 1:
				fm.Cells = append(fm.Cells, Cell{Plane: b, Row: i / cols, Col: i % cols, Stuck: 1})
			}
		}
	}
	return fm
}

// patternPlanes builds a bit-plane stack uniformly programmed to v, shaped
// like the weight planes so fault.Model's per-cell RNG stream lines up.
func patternPlanes(rows, cols, planes int, v uint8) []*quant.BitPlane {
	out := make([]*quant.BitPlane, planes)
	for b := range out {
		p := &quant.BitPlane{Rows: rows, Cols: cols, Bit: b, Bits: make([]uint8, rows*cols)}
		if v != 0 {
			for i := range p.Bits {
				p.Bits[i] = v
			}
		}
		out[b] = p
	}
	return out
}

// Thin models an imperfect detection sweep: each fault is independently
// missed with probability missRate (reproducibly in seed). A non-positive
// rate returns the map unchanged.
func (f *FaultMap) Thin(missRate float64, seed int64) *FaultMap {
	if missRate <= 0 || f.Empty() {
		return f
	}
	rng := rand.New(rand.NewSource(seed ^ 0x6d3a7c91))
	out := &FaultMap{Rows: f.Rows, Cols: f.Cols, Planes: f.Planes}
	for _, c := range f.Cells {
		if rng.Float64() >= missRate {
			out.Cells = append(out.Cells, c)
		}
	}
	return out
}

// Detect runs one march-test sweep under the policy: the ground-truth map
// thinned by the policy's miss rate. It returns both so callers can repair
// on what was detected while accounting residuals against the truth.
func (p Policy) Detect(m *fault.Model, layerKey int64, rows, cols, planes int) (truth, detected *FaultMap) {
	truth = MarchTest(m, layerKey, rows, cols, planes)
	detected = truth.Thin(p.DetectMissRate, p.DetectSeed^layerKey)
	return truth, detected
}
