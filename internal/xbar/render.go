package xbar

import (
	"fmt"
	"io"
	"strings"
)

// RenderMapping draws the cell occupancy of one crossbar of a layer's grid
// as ASCII art, downscaled to at most maxDim characters per side. Each
// character covers a block of cells: '#' = all cells hold weights, '+' =
// partially filled, '.' = empty. The view makes the paper's Fig. 2/Fig. 7
// internal-wastage argument visible for any (layer, shape) pair.
func (m Mapping) RenderMapping(w io.Writer, maxDim int) error {
	if maxDim < 1 {
		return fmt.Errorf("xbar: maxDim %d", maxDim)
	}
	rows, cols := m.Shape.R, m.Shape.C
	used := m.usedMask()
	scaleR := (rows + maxDim - 1) / maxDim
	scaleC := (cols + maxDim - 1) / maxDim
	if scaleR < 1 {
		scaleR = 1
	}
	if scaleC < 1 {
		scaleC = 1
	}
	if _, err := fmt.Fprintf(w, "%s on %v (first crossbar, %dx%d cells per char):\n",
		m.Layer.Name, m.Shape, scaleR, scaleC); err != nil {
		return err
	}
	var b strings.Builder
	for r0 := 0; r0 < rows; r0 += scaleR {
		b.Reset()
		b.WriteString("  ")
		for c0 := 0; c0 < cols; c0 += scaleC {
			total, filled := 0, 0
			for r := r0; r < r0+scaleR && r < rows; r++ {
				for c := c0; c < c0+scaleC && c < cols; c++ {
					total++
					if used[r*cols+c] {
						filled++
					}
				}
			}
			switch {
			case filled == 0:
				b.WriteByte('.')
			case filled == total:
				b.WriteByte('#')
			default:
				b.WriteByte('+')
			}
		}
		b.WriteByte('\n')
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// usedMask marks which cells of the grid's first crossbar hold weights,
// following the packing scheme: kernels stacked KernelsPerBand-deep down
// the rows, one kernel per column (grouped layers use block-diagonal
// placement).
func (m Mapping) usedMask() []bool {
	rows, cols := m.Shape.R, m.Shape.C
	used := make([]bool, rows*cols)
	l := m.Layer
	k2 := l.KernelElems()
	switch {
	case m.GroupPack > 0:
		// Block-diagonal: GroupPack groups, each rowsG×colsG.
		g := l.GroupCount()
		rowsG := (l.InC / g) * k2
		colsG := l.OutC / g
		for gi := 0; gi < m.GroupPack && gi < g; gi++ {
			for r := gi * rowsG; r < (gi+1)*rowsG && r < rows; r++ {
				for c := gi * colsG; c < (gi+1)*colsG && c < cols; c++ {
					used[r*cols+c] = true
				}
			}
		}
	case m.SplitKernel:
		// The first crossbar is fully covered by the split column stack.
		activeCols := l.OutC
		if activeCols > cols {
			activeCols = cols
		}
		for r := 0; r < rows; r++ {
			for c := 0; c < activeCols; c++ {
				used[r*cols+c] = true
			}
		}
	default:
		// First band: min(KernelsPerBand, InC) kernels of k² rows; the
		// first GridCols·cols columns hold min(cols, OutC) kernels each.
		kernels := m.KernelsPerBand
		if kernels > l.InC {
			kernels = l.InC
		}
		activeRows := kernels * k2
		activeCols := l.OutC
		if activeCols > cols {
			activeCols = cols
		}
		for r := 0; r < activeRows && r < rows; r++ {
			for c := 0; c < activeCols; c++ {
				used[r*cols+c] = true
			}
		}
	}
	return used
}
