package xbar

import (
	"math"
	"testing"
	"testing/quick"

	"autohet/internal/dnn"
)

func groupedLayer(k, inC, outC, groups int) *dnn.Layer {
	return &dnn.Layer{Name: "g", Kind: dnn.Conv, K: k, InC: inC, OutC: outC,
		Stride: 1, Pad: 1, Groups: groups}
}

// Depthwise 3×3 over 32 channels: each group is a 9×1 block. A 36×32
// crossbar packs min(⌊36/9⌋, 32) = 4 groups diagonally → 8 crossbars.
func TestMapGroupedDepthwisePacking(t *testing.T) {
	l := groupedLayer(3, 32, 32, 32)
	m := MapLayer(l, Rect(36, 32))
	if m.GroupPack != 4 {
		t.Fatalf("GroupPack = %d, want 4", m.GroupPack)
	}
	if m.Crossbars() != 8 {
		t.Fatalf("crossbars = %d, want 8", m.Crossbars())
	}
	if m.UsedCells != 32*9 {
		t.Fatalf("used cells = %d, want 288", m.UsedCells)
	}
	// Block-diagonal utilization: 288 / (8·36·32) ≈ 3.1% — the known
	// depthwise-on-crossbar pathology.
	want := 288.0 / (8 * 36 * 32)
	if math.Abs(m.Utilization()-want) > 1e-12 {
		t.Fatalf("utilization = %v, want %v", m.Utilization(), want)
	}
	if m.ActiveRows != 288 || m.ActiveCols != 32 {
		t.Fatalf("active rows/cols = %d/%d, want 288/32", m.ActiveRows, m.ActiveCols)
	}
}

// Small crossbars waste far less on depthwise layers — exactly the
// heterogeneity argument.
func TestDepthwisePrefersSmallCrossbars(t *testing.T) {
	l := groupedLayer(3, 64, 64, 64)
	uSmall := Utilization(l, Square(32))
	uLarge := Utilization(l, Square(512))
	if uSmall <= uLarge {
		t.Fatalf("depthwise util small %v must exceed large %v", uSmall, uLarge)
	}
	if uSmall < 10*uLarge {
		t.Fatalf("expected ≥10x utilization gap, got %v vs %v", uSmall, uLarge)
	}
}

// Grouped (non-depthwise) convolution: 4 groups of 16→16 with k=3 are
// 144×16 blocks; they overflow a 64×64 crossbar's rows → per-group grids.
func TestMapGroupedFallbackPerGroup(t *testing.T) {
	l := groupedLayer(3, 64, 64, 4)
	m := MapLayer(l, Square(64))
	if m.GroupPack != 0 {
		t.Fatalf("GroupPack = %d, want 0 (fallback)", m.GroupPack)
	}
	if m.GroupCopies != 4 {
		t.Fatalf("GroupCopies = %d, want 4", m.GroupCopies)
	}
	// Per group: rows ⌈16/⌊64/9⌋⌉ = ⌈16/7⌉ = 3 bands, cols ⌈16/64⌉ = 1.
	if m.GridRows != 3 || m.GridCols != 1 {
		t.Fatalf("per-group grid %dx%d, want 3x1", m.GridRows, m.GridCols)
	}
	if m.Crossbars() != 12 {
		t.Fatalf("crossbars = %d, want 12", m.Crossbars())
	}
}

func TestGroupedWeightsAndValidation(t *testing.T) {
	l := groupedLayer(3, 32, 64, 4)
	if l.Weights() != 32*9*64/4 {
		t.Fatalf("grouped weights = %d", l.Weights())
	}
	if l.GroupCount() != 4 {
		t.Fatalf("GroupCount = %d", l.GroupCount())
	}
	bad := groupedLayer(3, 30, 64, 4) // 30 % 4 != 0
	if err := bad.Validate(); err == nil {
		t.Fatal("invalid group split must fail validation")
	}
	neg := groupedLayer(3, 32, 64, -1)
	if err := neg.Validate(); err == nil {
		t.Fatal("negative groups must fail validation")
	}
	dense := groupedLayer(3, 32, 64, 1)
	if dense.GroupCount() != 1 || dense.Weights() != 32*9*64 {
		t.Fatal("groups=1 must behave densely")
	}
}

// Property: grouped-mapping invariants — utilization ∈ (0,1], used ≤ total,
// enough crossbar capacity for every block.
func TestGroupedMappingInvariants(t *testing.T) {
	shapes := MixedPool()
	f := func(kRaw, chRaw, gRaw, shapeRaw uint16) bool {
		k := 1 + int(kRaw)%5
		groups := 1 << (int(gRaw) % 5) // 1..16
		ch := groups * (1 + int(chRaw)%16)
		l := groupedLayer(k, ch, ch, groups)
		s := shapes[int(shapeRaw)%len(shapes)]
		m := MapLayer(l, s)
		u := m.Utilization()
		if u <= 0 || u > 1 {
			return false
		}
		if m.UsedCells > m.TotalCells {
			return false
		}
		if m.Crossbars() <= 0 {
			return false
		}
		// Capacity check: total cells must cover the weights.
		return m.TotalCells >= m.UsedCells
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
