package xbar

import (
	"testing"

	"autohet/internal/dnn"
)

func BenchmarkMapLayer(b *testing.B) {
	l := &dnn.Layer{Name: "c", Kind: dnn.Conv, K: 3, InC: 512, OutC: 512, Stride: 1, Pad: 1}
	shapes := MixedPool()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MapLayer(l, shapes[i%len(shapes)])
	}
}

func BenchmarkUtilizationSweep(b *testing.B) {
	m := dnn.VGG16()
	shapes := DefaultCandidates()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, l := range m.Mappable() {
			for _, s := range shapes {
				Utilization(l, s)
			}
		}
	}
}
