package xbar

import (
	"math"
	"testing"
	"testing/quick"

	"autohet/internal/dnn"
)

func convLayer(k, inC, outC int) *dnn.Layer {
	return &dnn.Layer{Name: "t", Kind: dnn.Conv, K: k, InC: inC, OutC: outC, Stride: 1, Pad: 1}
}

func fcLayer(in, out int) *dnn.Layer {
	return &dnn.Layer{Name: "t", Kind: dnn.FC, K: 1, InC: in, OutC: out, Stride: 1}
}

// Paper Fig. 2(a): four 3×3×3 kernels on a 32×32 crossbar → 10.5% utilization.
func TestUtilizationFig2a(t *testing.T) {
	u := Utilization(convLayer(3, 3, 4), Square(32))
	if math.Abs(u-108.0/1024.0) > 1e-12 {
		t.Fatalf("u = %v, want %v (10.5%%)", u, 108.0/1024.0)
	}
}

// Paper Fig. 2(b): twenty 1×1×32 kernels on a 32×32 crossbar → 62.5%.
func TestUtilizationFig2b(t *testing.T) {
	u := Utilization(convLayer(1, 32, 20), Square(32))
	if math.Abs(u-0.625) > 1e-12 {
		t.Fatalf("u = %v, want 0.625", u)
	}
}

// Paper §3.3: VGG16 L4 (k=3, Cin=128, Cout=128) → 83.7% on 32×32, 100% on 36×32.
func TestUtilizationVGG16L4(t *testing.T) {
	l := convLayer(3, 128, 128)
	u32 := Utilization(l, Square(32))
	if math.Abs(u32-0.8372) > 1e-3 {
		t.Fatalf("32x32 u = %v, want ≈0.837", u32)
	}
	u36 := Utilization(l, Rect(36, 32))
	if u36 != 1.0 {
		t.Fatalf("36x32 u = %v, want 1.0", u36)
	}
}

// Paper Fig. 5: 128 3×3×12 kernels. On 64×64: 2×2 grid, 256 active bitlines.
// On 128×128: 1×1 grid, 128 active bitlines. Crossbar-array utilization is
// 27/32 in both cases (the 27/128 figure in the paper adds tile wastage,
// which package accel accounts for).
func TestMappingFig5(t *testing.T) {
	l := convLayer(3, 12, 128)

	m64 := MapLayer(l, Square(64))
	if m64.GridRows != 2 || m64.GridCols != 2 || m64.Crossbars() != 4 {
		t.Fatalf("64x64 grid = %dx%d", m64.GridRows, m64.GridCols)
	}
	if m64.ActiveCols != 256 {
		t.Fatalf("64x64 active bitlines = %d, want 256", m64.ActiveCols)
	}
	if math.Abs(m64.Utilization()-27.0/32.0) > 1e-12 {
		t.Fatalf("64x64 u = %v, want 27/32", m64.Utilization())
	}

	m128 := MapLayer(l, Square(128))
	if m128.Crossbars() != 1 {
		t.Fatalf("128x128 crossbars = %d, want 1", m128.Crossbars())
	}
	if m128.ActiveCols != 128 {
		t.Fatalf("128x128 active bitlines = %d, want 128", m128.ActiveCols)
	}
	if math.Abs(m128.Utilization()-27.0/32.0) > 1e-12 {
		t.Fatalf("128x128 u = %v, want 27/32", m128.Utilization())
	}
}

func TestMappingFCLayer(t *testing.T) {
	// FC 4096→4096 on 512×512: grid 8×8, fully dense.
	m := MapLayer(fcLayer(4096, 4096), Square(512))
	if m.GridRows != 8 || m.GridCols != 8 {
		t.Fatalf("grid = %dx%d, want 8x8", m.GridRows, m.GridCols)
	}
	if m.Utilization() != 1.0 {
		t.Fatalf("u = %v, want 1.0", m.Utilization())
	}
	if m.SplitKernel {
		t.Fatal("FC layer must never split kernels")
	}
}

func TestMappingSplitKernel(t *testing.T) {
	// k=7, Cin=3: kernel column is 49 cells tall, exceeding a 32-row
	// crossbar → split across ⌈147/32⌉ = 5 crossbar rows.
	l := convLayer(7, 3, 64)
	m := MapLayer(l, Square(32))
	if !m.SplitKernel {
		t.Fatal("expected split-kernel mapping")
	}
	if m.KernelsPerBand != 0 {
		t.Fatalf("KernelsPerBand = %d, want 0", m.KernelsPerBand)
	}
	if m.GridRows != 5 || m.GridCols != 2 {
		t.Fatalf("grid = %dx%d, want 5x2", m.GridRows, m.GridCols)
	}
	wantU := float64(3*49*64) / float64(5*2*32*32)
	if math.Abs(m.Utilization()-wantU) > 1e-12 {
		t.Fatalf("split u = %v, want %v", m.Utilization(), wantU)
	}
}

func TestMappingActiveRows(t *testing.T) {
	// Fig. 5 64×64: active rows = Cin·k² per stack × GridCols = 108·2 = 216.
	m := MapLayer(convLayer(3, 12, 128), Square(64))
	if m.ActiveRows != 216 {
		t.Fatalf("ActiveRows = %d, want 216", m.ActiveRows)
	}
}

func TestMapLayerPanics(t *testing.T) {
	p := &dnn.Layer{Name: "p", Kind: dnn.Pool, K: 2, Stride: 2}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MapLayer on pool did not panic")
			}
		}()
		MapLayer(p, Square(32))
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MapLayer with invalid shape did not panic")
			}
		}()
		MapLayer(convLayer(3, 1, 1), Shape{})
	}()
}

func TestMappingString(t *testing.T) {
	s := MapLayer(convLayer(3, 12, 128), Square(64)).String()
	if s == "" {
		t.Fatal("empty mapping string")
	}
}

// Property: utilization is always in (0, 1], used cells never exceed total,
// and the grid always fits the unfolded matrix.
func TestMappingInvariants(t *testing.T) {
	shapes := MixedPool()
	f := func(kRaw, inCRaw, outCRaw, shapeRaw uint16) bool {
		k := 1 + int(kRaw)%7
		inC := 1 + int(inCRaw)%512
		outC := 1 + int(outCRaw)%512
		s := shapes[int(shapeRaw)%len(shapes)]
		l := convLayer(k, inC, outC)
		m := MapLayer(l, s)
		u := m.Utilization()
		if u <= 0 || u > 1 {
			return false
		}
		if m.UsedCells > m.TotalCells {
			return false
		}
		// Grid capacity must cover the unfolded matrix.
		if m.GridCols*s.C < outC {
			return false
		}
		if !m.SplitKernel {
			if m.GridRows*m.KernelsPerBand < inC {
				return false
			}
		} else if m.GridRows*s.R < inC*k*k {
			return false
		}
		// Active bitlines: one per kernel column per band.
		return m.ActiveCols == outC*m.GridRows
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Eq. 4 (closed form) matches the constructive mapping for
// non-split cases.
func TestEquation4MatchesConstruction(t *testing.T) {
	f := func(kRaw, inCRaw, outCRaw uint16) bool {
		k := 1 + int(kRaw)%5 // k ≤ 5 so k² ≤ 25 < 32: never splits
		inC := 1 + int(inCRaw)%300
		outC := 1 + int(outCRaw)%300
		l := convLayer(k, inC, outC)
		for _, s := range SquareCandidates() {
			m := MapLayer(l, s)
			kpb := s.R / (k * k)
			denom := float64(s.R) * float64(ceilDiv(inC, kpb)) * float64(s.C) * float64(ceilDiv(outC, s.C))
			want := float64(inC*k*k*outC) / denom
			if math.Abs(m.Utilization()-want) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
