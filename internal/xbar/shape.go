// Package xbar models ReRAM crossbars the way the AutoHet paper reasons
// about them: a crossbar is an r×c array of 1-bit memristor cells; a DNN
// layer's unfolded weight matrix is packed one-kernel-per-column onto a grid
// of identical crossbars (Fig. 7); and the crossbar-array utilization of
// that packing follows the paper's Equation 4. The package also defines the
// square (SXB) and rectangular (RXB) candidate sets from §3.3/§4.1.
package xbar

import (
	"fmt"
	"strconv"
	"strings"
)

// Shape is a crossbar geometry: R wordlines (rows) × C bitlines (columns).
type Shape struct {
	R, C int
}

// Cells returns the number of memristor cells, R·C.
func (s Shape) Cells() int { return s.R * s.C }

// IsSquare reports whether the crossbar is square (an SXB in the paper's
// terminology; otherwise it is a rectangular RXB).
func (s Shape) IsSquare() bool { return s.R == s.C }

// Valid reports whether both dimensions are positive.
func (s Shape) Valid() bool { return s.R > 0 && s.C > 0 }

// String renders the shape as "RxC", e.g. "64x64" or "36x32".
func (s Shape) String() string { return fmt.Sprintf("%dx%d", s.R, s.C) }

// ParseShape parses "RxC" (e.g. "72x64") or a single integer "64" meaning a
// square crossbar.
func ParseShape(text string) (Shape, error) {
	text = strings.TrimSpace(text)
	if r, err := strconv.Atoi(text); err == nil {
		if r <= 0 {
			return Shape{}, fmt.Errorf("xbar: non-positive shape %q", text)
		}
		return Shape{R: r, C: r}, nil
	}
	parts := strings.SplitN(strings.ToLower(text), "x", 2)
	if len(parts) != 2 {
		return Shape{}, fmt.Errorf("xbar: cannot parse shape %q (want RxC)", text)
	}
	r, err1 := strconv.Atoi(strings.TrimSpace(parts[0]))
	c, err2 := strconv.Atoi(strings.TrimSpace(parts[1]))
	if err1 != nil || err2 != nil || r <= 0 || c <= 0 {
		return Shape{}, fmt.Errorf("xbar: cannot parse shape %q (want RxC)", text)
	}
	return Shape{R: r, C: c}, nil
}

// Square returns an n×n shape.
func Square(n int) Shape { return Shape{R: n, C: n} }

// Rect returns an r×c shape.
func Rect(r, c int) Shape { return Shape{R: r, C: c} }

// SquareCandidates returns the five homogeneous-baseline SXB sizes used
// throughout the paper (§2.2, §4.1): 32², 64², 128², 256², 512².
func SquareCandidates() []Shape {
	return []Shape{Square(32), Square(64), Square(128), Square(256), Square(512)}
}

// RectCandidates returns the five RXB sizes from §4.3: heights are multiples
// of 9 to fit 3×3 kernels without wasted rows, widths stay powers of two.
func RectCandidates() []Shape {
	return []Shape{Rect(36, 32), Rect(72, 64), Rect(144, 128), Rect(288, 256), Rect(576, 512)}
}

// DefaultCandidates returns the paper's default AutoHet candidate set
// (§3.3/§4.1): 32×32, 36×32, 72×64, 288×256, 576×512.
func DefaultCandidates() []Shape {
	return []Shape{Square(32), Rect(36, 32), Rect(72, 64), Rect(288, 256), Rect(576, 512)}
}

// MixedPool returns the ten-shape pool (5 SXBs + 5 RXBs) the sensitivity
// study (§4.4, Fig. 11a/b) draws candidate subsets from.
func MixedPool() []Shape {
	return append(SquareCandidates(), RectCandidates()...)
}

// FindShape returns the index of s in candidates, or -1.
func FindShape(candidates []Shape, s Shape) int {
	for i, c := range candidates {
		if c == s {
			return i
		}
	}
	return -1
}

// ShapeNames renders a candidate list as comma-separated names.
func ShapeNames(candidates []Shape) string {
	parts := make([]string, len(candidates))
	for i, s := range candidates {
		parts[i] = s.String()
	}
	return strings.Join(parts, ",")
}

// ParseShapeList parses a comma-separated list of shapes.
func ParseShapeList(text string) ([]Shape, error) {
	var out []Shape
	for _, part := range strings.Split(text, ",") {
		if strings.TrimSpace(part) == "" {
			continue
		}
		s, err := ParseShape(part)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("xbar: empty shape list %q", text)
	}
	return out, nil
}
