package xbar

import (
	"fmt"

	"autohet/internal/dnn"
)

// Mapping describes how one DNN layer's unfolded weight matrix packs onto a
// grid of identical crossbars, following the paper's scheme (Fig. 7): each
// kernel occupies one column; a crossbar column band holds ⌊r/k²⌋ kernels
// stacked vertically; the grid needs ⌈C_in/⌊r/k²⌋⌉ crossbar rows and
// ⌈C_out/c⌉ crossbar columns.
type Mapping struct {
	Layer *dnn.Layer
	Shape Shape

	GridRows int // crossbar rows in the array
	GridCols int // crossbar columns in the array
	// KernelsPerBand is ⌊r/k²⌋: kernels stacked per crossbar column. Zero
	// means one kernel does not fit a single crossbar column and is split
	// across GridRows crossbars (SplitKernel true); Eq. 4 does not cover
	// this case, so utilization falls back to weights / allocated cells.
	KernelsPerBand int
	SplitKernel    bool

	UsedCells  int64 // cells holding weights = layer.Weights()
	TotalCells int64 // cells in all crossbars of the grid

	// ActiveRows/ActiveCols count, across the whole grid, wordlines that
	// carry input voltages and bitlines that produce currents during one
	// MVM. They drive DAC and ADC activation accounting (Fig. 5 counts
	// ADCs as active bitlines: 128 3×3×12 kernels on 64×64 → 256 ADCs).
	ActiveRows int
	ActiveCols int

	// Grouped-convolution extension (dnn.Layer.Groups > 1): GroupPack is
	// the number of groups packed block-diagonally into one crossbar
	// (0 for dense layers); GroupCopies is the number of independent
	// per-group grids when a single group overflows a crossbar (1
	// otherwise).
	GroupPack   int
	GroupCopies int
}

// MapLayer computes the crossbar-grid mapping of a mappable layer onto
// crossbars of the given shape.
func MapLayer(l *dnn.Layer, s Shape) Mapping {
	if !l.Mappable() {
		panic("xbar: MapLayer on non-mappable layer " + l.Name)
	}
	if !s.Valid() {
		panic(fmt.Sprintf("xbar: invalid shape %v", s))
	}
	if l.GroupCount() > 1 {
		return mapGrouped(l, s)
	}
	k2 := l.KernelElems()
	cin, cout := l.InC, l.OutC
	m := Mapping{Layer: l, Shape: s, UsedCells: int64(l.Weights()), GroupCopies: 1}
	m.KernelsPerBand = s.R / k2
	if m.KernelsPerBand == 0 {
		// A single kernel column (k² cells tall) exceeds the crossbar
		// height: split each kernel across ⌈C_in·k²/r⌉ vertically adjacent
		// crossbars. Each of the C_in channel slices still lands in the
		// same bitline position. Eq. 4 does not cover this case.
		m.SplitKernel = true
		m.GridRows = ceilDiv(cin*k2, s.R)
	} else {
		m.GridRows = ceilDiv(cin, m.KernelsPerBand)
	}
	m.GridCols = ceilDiv(cout, s.C)
	// Wordlines carrying weights: every weight row of the unfolded matrix
	// (C_in·k² in total down one stack of bands) is driven in each of the
	// GridCols horizontal replicas.
	m.ActiveRows = cin * k2 * m.GridCols
	m.TotalCells = int64(m.GridRows) * int64(m.GridCols) * int64(s.Cells())
	// Every kernel column is replicated once per crossbar row band.
	m.ActiveCols = cout * m.GridRows
	return m
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// mapGrouped maps a grouped convolution. Each group's kernels form an
// independent (C_in/G·k²) × (C_out/G) block; blocks share neither rows nor
// columns with each other (their inputs differ and bitline currents may not
// mix), so the unfolded matrix is block diagonal. When a block fits inside
// one crossbar, GroupPack = min(⌊r/rows_g⌋, ⌊c/cols_g⌋) blocks pack
// diagonally per crossbar; otherwise each group maps as its own dense
// sub-grid (GroupCopies = G).
func mapGrouped(l *dnn.Layer, s Shape) Mapping {
	g := l.GroupCount()
	k2 := l.KernelElems()
	cinG, coutG := l.InC/g, l.OutC/g
	rowsG := cinG * k2
	colsG := coutG

	m := Mapping{Layer: l, Shape: s, UsedCells: int64(l.Weights()), GroupCopies: 1}
	pack := min(s.R/rowsG, s.C/colsG)
	if pack >= 1 {
		m.GroupPack = pack
		m.GridRows = ceilDiv(g, pack)
		m.GridCols = 1
		m.KernelsPerBand = s.R / k2
		m.ActiveRows = g * rowsG
		m.ActiveCols = g * colsG
		m.TotalCells = int64(m.GridRows) * int64(s.Cells())
		return m
	}
	// A single group overflows one crossbar: map it densely and replicate
	// the grid once per group.
	sub := dnn.Layer{
		Name: l.Name, Kind: l.Kind, K: l.K, InC: cinG, OutC: coutG,
		Stride: l.Stride, Pad: l.Pad, Index: l.Index,
	}
	sm := MapLayer(&sub, s)
	m.GridRows = sm.GridRows
	m.GridCols = sm.GridCols
	m.KernelsPerBand = sm.KernelsPerBand
	m.SplitKernel = sm.SplitKernel
	m.GroupCopies = g
	m.ActiveRows = sm.ActiveRows * g
	m.ActiveCols = sm.ActiveCols * g
	m.TotalCells = sm.TotalCells * int64(g)
	return m
}

// Crossbars returns the number of crossbars in the grid (including
// per-group copies for grouped convolutions).
func (m Mapping) Crossbars() int {
	n := m.GridRows * m.GridCols
	if m.GroupCopies > 1 {
		n *= m.GroupCopies
	}
	return n
}

// Utilization returns the crossbar-array utilization of the mapping —
// the paper's Equation 4 for the non-split case:
//
//	u = (C_in·k²·C_out) / (r·⌈C_in/⌊r/k²⌋⌉ · c·⌈C_out/c⌉)
//
// which equals used cells over total cells of the allocated crossbar grid.
func (m Mapping) Utilization() float64 {
	if m.TotalCells == 0 {
		return 0
	}
	return float64(m.UsedCells) / float64(m.TotalCells)
}

// Utilization is the paper's Equation 4 as a free function: the crossbar-
// array utilization of mapping layer l onto crossbars of shape s.
func Utilization(l *dnn.Layer, s Shape) float64 {
	return MapLayer(l, s).Utilization()
}

// String summarizes the mapping.
func (m Mapping) String() string {
	return fmt.Sprintf("%s on %v: %dx%d grid (%d XBs), util %.1f%%",
		m.Layer.Name, m.Shape, m.GridRows, m.GridCols, m.Crossbars(), 100*m.Utilization())
}
