package xbar

import (
	"bytes"
	"strings"
	"testing"

	"autohet/internal/dnn"
)

func renderOf(t *testing.T, m Mapping, dim int) string {
	t.Helper()
	var buf bytes.Buffer
	if err := m.RenderMapping(&buf, dim); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// Fig. 2(a): four 3×3×3 kernels on 32×32 — 27 active rows × 4 columns, the
// rest empty.
func TestRenderMappingFig2a(t *testing.T) {
	m := MapLayer(convLayer(3, 3, 4), Square(32))
	out := renderOf(t, m, 32) // 1 char per cell
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")[1:]
	if len(lines) != 32 {
		t.Fatalf("lines = %d", len(lines))
	}
	// Rows 0–26 start with four '#', rows 27–31 are all '.'.
	if !strings.HasPrefix(strings.TrimSpace(lines[0]), "####.") {
		t.Fatalf("row 0 = %q", lines[0])
	}
	if strings.ContainsAny(lines[30], "#+") {
		t.Fatalf("row 30 should be empty: %q", lines[30])
	}
	// Count filled cells: 27 rows × 4 cols.
	filled := strings.Count(out, "#")
	if filled != 27*4 {
		t.Fatalf("filled cells = %d, want 108", filled)
	}
}

func TestRenderMappingDownscale(t *testing.T) {
	m := MapLayer(convLayer(3, 128, 128), Rect(576, 512))
	out := renderOf(t, m, 16)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")[1:]
	if len(lines) > 16 {
		t.Fatalf("downscale failed: %d lines", len(lines))
	}
	if !strings.Contains(out, "#") {
		t.Fatal("no filled blocks rendered")
	}
}

func TestRenderMappingDepthwiseDiagonal(t *testing.T) {
	l := &dnn.Layer{Name: "dw", Kind: dnn.Conv, K: 3, InC: 8, OutC: 8, Stride: 1, Pad: 1, Groups: 8}
	m := MapLayer(l, Rect(36, 32))
	out := renderOf(t, m, 36)
	// Block-diagonal: row 0 has a '#' in column 0 region but not at the
	// right edge; row 10 (second block) fills a shifted column.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")[1:]
	if lines[0][2] != '#' {
		t.Fatalf("row 0 = %q", lines[0])
	}
	if lines[9][2] == '#' { // second group's rows use column 1, not 0
		t.Fatalf("row 9 = %q (diagonal structure missing)", lines[9])
	}
}

func TestRenderMappingSplitKernel(t *testing.T) {
	m := MapLayer(convLayer(7, 3, 20), Square(32))
	if !m.SplitKernel {
		t.Fatal("expected split mapping")
	}
	out := renderOf(t, m, 32)
	// All 32 rows active across 20 columns on the first crossbar.
	if strings.Count(out, "#") != 32*20 {
		t.Fatalf("split render filled %d, want 640", strings.Count(out, "#"))
	}
}

func TestRenderMappingBadDim(t *testing.T) {
	m := MapLayer(convLayer(3, 3, 4), Square(32))
	var buf bytes.Buffer
	if err := m.RenderMapping(&buf, 0); err == nil {
		t.Fatal("maxDim 0 must error")
	}
}
