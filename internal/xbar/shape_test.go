package xbar

import (
	"testing"
	"testing/quick"
)

func TestShapeBasics(t *testing.T) {
	s := Rect(36, 32)
	if s.Cells() != 1152 {
		t.Fatalf("Cells = %d", s.Cells())
	}
	if s.IsSquare() {
		t.Fatal("36x32 reported square")
	}
	if !Square(64).IsSquare() {
		t.Fatal("64x64 reported rectangular")
	}
	if s.String() != "36x32" {
		t.Fatalf("String = %q", s.String())
	}
	if !s.Valid() || (Shape{}).Valid() || (Shape{R: -1, C: 2}).Valid() {
		t.Fatal("Valid wrong")
	}
}

func TestParseShape(t *testing.T) {
	cases := []struct {
		in   string
		want Shape
		ok   bool
	}{
		{"64x64", Square(64), true},
		{"36x32", Rect(36, 32), true},
		{" 72 x 64 ", Rect(72, 64), true},
		{"128", Square(128), true},
		{"576X512", Rect(576, 512), true},
		{"0x32", Shape{}, false},
		{"-4", Shape{}, false},
		{"axb", Shape{}, false},
		{"", Shape{}, false},
	}
	for _, c := range cases {
		got, err := ParseShape(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ParseShape(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseShape(%q) succeeded, want error", c.in)
		}
	}
}

func TestParseShapeRoundTrip(t *testing.T) {
	f := func(rRaw, cRaw uint16) bool {
		s := Shape{R: 1 + int(rRaw)%1024, C: 1 + int(cRaw)%1024}
		got, err := ParseShape(s.String())
		return err == nil && got == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCandidateSets(t *testing.T) {
	sq := SquareCandidates()
	if len(sq) != 5 {
		t.Fatalf("SquareCandidates len = %d", len(sq))
	}
	for i, want := range []int{32, 64, 128, 256, 512} {
		if sq[i] != Square(want) {
			t.Errorf("SXB %d = %v, want %dx%d", i, sq[i], want, want)
		}
		if !sq[i].IsSquare() {
			t.Errorf("SXB %v not square", sq[i])
		}
	}
	// §4.3: RXB heights are multiples of 9, widths powers of two.
	for _, r := range RectCandidates() {
		if r.R%9 != 0 {
			t.Errorf("RXB %v height not a multiple of 9", r)
		}
		if r.C&(r.C-1) != 0 {
			t.Errorf("RXB %v width not a power of two", r)
		}
		if r.IsSquare() {
			t.Errorf("RXB %v is square", r)
		}
	}
	// §3.3 default: 32x32, 36x32, 72x64, 288x256, 576x512.
	def := DefaultCandidates()
	want := []Shape{Square(32), Rect(36, 32), Rect(72, 64), Rect(288, 256), Rect(576, 512)}
	if len(def) != len(want) {
		t.Fatalf("DefaultCandidates len = %d", len(def))
	}
	for i := range want {
		if def[i] != want[i] {
			t.Errorf("default %d = %v, want %v", i, def[i], want[i])
		}
	}
	if len(MixedPool()) != 10 {
		t.Fatalf("MixedPool len = %d", len(MixedPool()))
	}
}

func TestFindShape(t *testing.T) {
	cands := DefaultCandidates()
	if FindShape(cands, Rect(72, 64)) != 2 {
		t.Fatal("FindShape existing wrong")
	}
	if FindShape(cands, Square(999)) != -1 {
		t.Fatal("FindShape missing wrong")
	}
}

func TestShapeNamesAndParseList(t *testing.T) {
	names := ShapeNames([]Shape{Square(32), Rect(36, 32)})
	if names != "32x32,36x32" {
		t.Fatalf("ShapeNames = %q", names)
	}
	list, err := ParseShapeList("32x32, 36x32 ,72x64")
	if err != nil || len(list) != 3 || list[2] != Rect(72, 64) {
		t.Fatalf("ParseShapeList = %v, %v", list, err)
	}
	if _, err := ParseShapeList(""); err == nil {
		t.Fatal("empty list must error")
	}
	if _, err := ParseShapeList("32x32,bogus"); err == nil {
		t.Fatal("bad element must error")
	}
}
