// Package obs is the shared observability layer: a process-wide registry
// of lock-free counters, gauges, and log-bucketed latency histograms,
// lightweight trace spans with per-stage duration attribution, and two
// exposition paths — Prometheus text format over HTTP (cmd/fleet) and JSON
// snapshots (cmd/autohet, cmd/experiments -metrics-json).
//
// Hot paths record through package-level metric handles: one atomic op per
// event and zero allocations, so instrumentation is safe even on the
// zero-alloc warm-MVM path (asserted with testing.AllocsPerRun). Components
// that the evaluation hot loop cannot afford to touch at all publish their
// existing internal atomics through CounterFunc/GaugeFunc instead, which
// costs nothing until a scrape reads them.
//
// Series names follow the Prometheus data model: a metric family name plus
// optional labels baked into the series string, e.g.
//
//	autohet_fleet_requests_total{outcome="shed"}
//	autohet_fleet_queue_depth{replica="g0-1"}
//
// The exposition writer groups series by family (the name up to '{') and
// emits one HELP/TYPE header per family.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// AddSince adds the nanoseconds elapsed since start — the idiom for
// cumulative stage-duration counters.
func (c *Counter) AddSince(start time.Time) { c.v.Add(int64(time.Since(start))) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an atomic float64 value that can move in both directions.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add atomically adds v.
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Load returns the current value.
func (g *Gauge) Load() float64 { return math.Float64frombits(g.bits.Load()) }

type seriesKind int

const (
	kindCounter seriesKind = iota
	kindCounterFunc
	kindGauge
	kindGaugeFunc
	kindHistogram
)

type series struct {
	kind seriesKind
	name string
}

// Registry holds named metrics. The zero value is not usable; use
// NewRegistry (or the package-level Default). All methods are safe for
// concurrent use; metric handles returned by the get-or-create methods are
// lock-free on the record path.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	cfuncs   map[string]func() int64
	gauges   map[string]*Gauge
	gfuncs   map[string]func() float64
	hists    map[string]*Histogram
	help     map[string]string // per family; first registration wins
	order    []series          // registration order, for stable exposition
}

// Default is the process-wide registry the built-in instrumentation
// (internal/sim, internal/search, internal/fleet, internal/serving) records
// into and the cmd binaries expose.
var Default = NewRegistry()

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		cfuncs:   map[string]func() int64{},
		gauges:   map[string]*Gauge{},
		gfuncs:   map[string]func() float64{},
		hists:    map[string]*Histogram{},
		help:     map[string]string{},
	}
}

// family returns the metric family of a series name: everything up to the
// label block.
func family(name string) string {
	for i := 0; i < len(name); i++ {
		if name[i] == '{' {
			return name[:i]
		}
	}
	return name
}

// register records bookkeeping for a new series under r.mu.
func (r *Registry) register(kind seriesKind, name, help string) {
	if f := family(name); r.help[f] == "" {
		r.help[f] = help
	}
	r.order = append(r.order, series{kind: kind, name: name})
}

// Counter returns the named counter, creating it on first use. Re-requesting
// an existing name returns the same handle; requesting a name already held
// by a different metric kind panics (a programming error).
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	r.checkFree(name)
	c := &Counter{}
	r.counters[name] = c
	r.register(kindCounter, name, help)
	return c
}

// RegisterCounter publishes an externally owned counter under name. Unlike
// Counter, re-registering an existing name rebinds the series to the new
// handle — components that are torn down and rebuilt (fleets in tests,
// benchmarks) re-claim their series instead of leaking stale ones.
func (r *Registry) RegisterCounter(name, help string, c *Counter) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.counters[name]; !ok {
		r.checkFree(name)
		r.register(kindCounter, name, help)
	}
	r.counters[name] = c
}

// CounterFunc publishes a callback-backed counter — the zero-record-cost
// path for components that already keep their own atomics (e.g. the search
// evaluator). Re-registering replaces the callback.
func (r *Registry) CounterFunc(name, help string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.cfuncs[name]; !ok {
		r.checkFree(name)
		r.register(kindCounterFunc, name, help)
	}
	r.cfuncs[name] = fn
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.checkFree(name)
	g := &Gauge{}
	r.gauges[name] = g
	r.register(kindGauge, name, help)
	return g
}

// GaugeFunc publishes a callback-backed gauge (evaluated at exposition
// time). Re-registering replaces the callback.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.gfuncs[name]; !ok {
		r.checkFree(name)
		r.register(kindGaugeFunc, name, help)
	}
	r.gfuncs[name] = fn
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name, help string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	r.checkFree(name)
	h := &Histogram{}
	r.hists[name] = h
	r.register(kindHistogram, name, help)
	return h
}

// RegisterHistogram publishes an externally owned histogram, rebinding the
// series if the name exists (see RegisterCounter).
func (r *Registry) RegisterHistogram(name, help string, h *Histogram) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.hists[name]; !ok {
		r.checkFree(name)
		r.register(kindHistogram, name, help)
	}
	r.hists[name] = h
}

// checkFree panics when name is already bound to a different metric kind.
// Callers hold r.mu.
func (r *Registry) checkFree(name string) {
	_, c := r.counters[name]
	_, cf := r.cfuncs[name]
	_, g := r.gauges[name]
	_, gf := r.gfuncs[name]
	_, h := r.hists[name]
	if c || cf || g || gf || h {
		panic(fmt.Sprintf("obs: series %q already registered with a different kind", name))
	}
}

// snapshot copies the registry state for exposition, resolving callbacks
// outside r.mu is not possible for funcs bound to live objects, so the
// callbacks themselves are copied and invoked after unlock.
type snapshotEntry struct {
	kind seriesKind
	name string
	ival int64
	fval float64
	hist *Histogram
}

func (r *Registry) snapshot() (entries []snapshotEntry, help map[string]string) {
	r.mu.RLock()
	order := make([]series, len(r.order))
	copy(order, r.order)
	cfuncs := make([]func() int64, len(order))
	gfuncs := make([]func() float64, len(order))
	entries = make([]snapshotEntry, 0, len(order))
	for i, s := range order {
		e := snapshotEntry{kind: s.kind, name: s.name}
		switch s.kind {
		case kindCounter:
			e.ival = r.counters[s.name].Load()
		case kindCounterFunc:
			cfuncs[i] = r.cfuncs[s.name]
		case kindGauge:
			e.fval = r.gauges[s.name].Load()
		case kindGaugeFunc:
			gfuncs[i] = r.gfuncs[s.name]
		case kindHistogram:
			e.hist = r.hists[s.name]
		}
		entries = append(entries, e)
	}
	help = make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.RUnlock()
	// Callbacks run outside the lock: they may take their component's own
	// locks, and nothing stops them registering further metrics.
	for i := range entries {
		switch entries[i].kind {
		case kindCounterFunc:
			entries[i].ival = cfuncs[i]()
		case kindGaugeFunc:
			entries[i].fval = gfuncs[i]()
		}
	}
	return entries, help
}

// Families returns the sorted metric family names currently registered —
// handy for smoke tests asserting required families are present.
func (r *Registry) Families() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	seen := map[string]bool{}
	for _, s := range r.order {
		seen[family(s.name)] = true
	}
	out := make([]string, 0, len(seen))
	for f := range seen {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}
