package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// Exposition: Prometheus text format 0.0.4 for scraping (cmd/fleet
// /metrics) and JSON snapshots for one-shot runs (cmd/autohet,
// cmd/experiments -metrics-json).

// splitSeries breaks a series name into its family and the label block's
// interior ("" when unlabeled): `f{a="b"}` → (`f`, `a="b"`).
func splitSeries(name string) (fam, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	return name[:i], strings.TrimSuffix(name[i+1:], "}")
}

// seriesWith renders fam plus the merged label set.
func seriesWith(fam, labels string, extra ...string) string {
	parts := make([]string, 0, 1+len(extra))
	if labels != "" {
		parts = append(parts, labels)
	}
	parts = append(parts, extra...)
	if len(parts) == 0 {
		return fam
	}
	return fam + "{" + strings.Join(parts, ",") + "}"
}

func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes every registered series in Prometheus text
// exposition format 0.0.4, grouped by family with one HELP/TYPE header
// each, in registration order. Histograms are exposed as summaries
// (quantile-labeled series plus _sum and _count) with a companion
// <family>_max gauge carrying the exact tracked maximum.
func (r *Registry) WritePrometheus(w io.Writer) {
	entries, help := r.snapshot()
	headered := map[string]bool{}
	header := func(fam, typ string) {
		if headered[fam] {
			return
		}
		headered[fam] = true
		if h := help[fam]; h != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", fam, h)
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", fam, typ)
	}
	for _, e := range entries {
		fam, labels := splitSeries(e.name)
		switch e.kind {
		case kindCounter, kindCounterFunc:
			header(fam, "counter")
			fmt.Fprintf(w, "%s %d\n", e.name, e.ival)
		case kindGauge, kindGaugeFunc:
			header(fam, "gauge")
			fmt.Fprintf(w, "%s %s\n", e.name, promFloat(e.fval))
		case kindHistogram:
			header(fam, "summary")
			for _, q := range [...]float64{0.5, 0.95, 0.99} {
				fmt.Fprintf(w, "%s %s\n",
					seriesWith(fam, labels, fmt.Sprintf("quantile=%q", promFloat(q))),
					promFloat(e.hist.Quantile(q)))
			}
			fmt.Fprintf(w, "%s %s\n", seriesWith(fam+"_sum", labels), promFloat(e.hist.Sum()))
			fmt.Fprintf(w, "%s %d\n", seriesWith(fam+"_count", labels), e.hist.Count())
			header(fam+"_max", "gauge")
			fmt.Fprintf(w, "%s %s\n", seriesWith(fam+"_max", labels), promFloat(e.hist.Max()))
		}
	}
}

// Handler serves WritePrometheus over HTTP with the text-format content
// type, for mounting at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// HistogramStats is the JSON-snapshot view of one histogram.
type HistogramStats struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean_ns"`
	P50   float64 `json:"p50_ns"`
	P95   float64 `json:"p95_ns"`
	P99   float64 `json:"p99_ns"`
	Max   float64 `json:"max_ns"`
}

// JSONSnapshot is a point-in-time dump of the registry, keyed by full
// series name (labels included).
type JSONSnapshot struct {
	Counters   map[string]int64          `json:"counters,omitempty"`
	Gauges     map[string]float64        `json:"gauges,omitempty"`
	Histograms map[string]HistogramStats `json:"histograms,omitempty"`
}

// JSON captures the registry as a snapshot value.
func (r *Registry) JSON() JSONSnapshot {
	entries, _ := r.snapshot()
	s := JSONSnapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramStats{},
	}
	for _, e := range entries {
		switch e.kind {
		case kindCounter, kindCounterFunc:
			s.Counters[e.name] = e.ival
		case kindGauge, kindGaugeFunc:
			s.Gauges[e.name] = e.fval
		case kindHistogram:
			s.Histograms[e.name] = HistogramStats{
				Count: e.hist.Count(),
				Mean:  e.hist.Mean(),
				P50:   e.hist.Quantile(0.5),
				P95:   e.hist.Quantile(0.95),
				P99:   e.hist.Quantile(0.99),
				Max:   e.hist.Max(),
			}
		}
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.JSON())
}
