package obs

import (
	"math"
	"sort"
	"sync"
	"testing"
)

// TestHistogramQuantileAccuracy checks the log-bucketed quantiles against
// exact nearest-rank values: the geometric-midpoint convention keeps every
// reported quantile within one bucket-growth factor (~7%) of the truth.
func TestHistogramQuantileAccuracy(t *testing.T) {
	var h Histogram
	// Deterministic LCG spanning ~3 decades (1e3 .. 1e6 ns).
	vals := make([]float64, 0, 20000)
	x := uint64(12345)
	for i := 0; i < 20000; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		v := 1e3 * math.Pow(10, 3*float64(x>>11)/float64(1<<53))
		vals = append(vals, v)
		h.Observe(v)
	}
	sort.Float64s(vals)
	for _, p := range []float64{0.50, 0.95, 0.99} {
		exact := vals[int(math.Ceil(p*float64(len(vals))))-1]
		got := h.Quantile(p)
		if rel := math.Abs(got-exact) / exact; rel > histGrowth-1 {
			t.Errorf("q%.2f: histogram %.1f vs exact %.1f (rel err %.3f)", p, got, exact, rel)
		}
	}
	if h.Count() != 20000 {
		t.Fatalf("count %d", h.Count())
	}
	var sum float64
	for _, v := range vals {
		sum += v
	}
	if mean := h.Mean(); math.Abs(mean-sum/20000) > 1e-6*mean {
		t.Errorf("mean %v vs %v", mean, sum/20000)
	}
	if max := h.Max(); max != vals[len(vals)-1] {
		t.Errorf("max %v vs %v", max, vals[len(vals)-1])
	}
}

func TestHistogramEdges(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	h.Observe(-5)         // ignored
	h.Observe(math.NaN()) // ignored
	if h.Count() != 0 {
		t.Fatalf("invalid observations counted: %d", h.Count())
	}
	h.Observe(1) // bucket 0: [0, 64), but the cap at Max() bites first
	if q := h.Quantile(0.5); q != 1 {
		t.Fatalf("single-sample quantile %v, want the sample itself", q)
	}
	h.Observe(100)
	if q := h.Quantile(0.25); q != histMinNS/2 {
		t.Fatalf("bucket-0 quantile %v, want midpoint %v", q, histMinNS/2)
	}
	// Quantile clamps p outside (0, 1].
	if h.Quantile(-1) <= 0 || h.Quantile(2) != h.Max() {
		t.Fatal("clamped quantiles wrong on a non-empty histogram")
	}
}

func TestBucketIndexMonotone(t *testing.T) {
	prev := -1
	for ns := 1.0; ns < 1e13; ns *= 1.31 {
		i := bucketIndex(ns)
		if i < prev {
			t.Fatalf("bucketIndex(%g) = %d < previous %d", ns, i, prev)
		}
		if i < 0 || i >= histBuckets {
			t.Fatalf("bucketIndex(%g) = %d out of range", ns, i)
		}
		prev = i
	}
}

// TestHistogramOverflowTail is the regression test for the tail-reporting
// bug: samples beyond the last bucket edge (histMinNS·1.07^358 ≈ 2.28e12 ns)
// are clamped into the overflow bucket, and the pre-fix code reported them
// at the bucket's geometric midpoint — underestimating high quantiles by
// orders of magnitude. The overflow bucket must report the tracked max.
func TestHistogramOverflowTail(t *testing.T) {
	var h Histogram
	if bucketIndex(1e13) != histBuckets-1 {
		t.Fatalf("1e13 ns must land in the overflow bucket, got %d", bucketIndex(1e13))
	}
	if 1e13 < HistMaxEdge {
		t.Fatalf("test sample 1e13 not beyond the overflow edge %g", HistMaxEdge)
	}
	// 90 fast samples, 10 huge ones: q95 and q99 land in the overflow bucket.
	for i := 0; i < 90; i++ {
		h.Observe(1000)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1e13)
	}
	for _, p := range []float64{0.95, 0.99} {
		if got := h.Quantile(p); got != 1e13 {
			t.Errorf("q%g = %g, want tracked max 1e13 (overflow midpoint would be ~%g)",
				p, got, HistMaxEdge*math.Sqrt(histGrowth))
		}
	}
	if q50, exact := h.Quantile(0.5), 1000.0; math.Abs(q50-exact)/exact > histGrowth-1 {
		t.Errorf("q50 %g drifted from %g", q50, exact)
	}
}

// TestHistogramQuantileOneIsMax pins Quantile(1) == Max() exactly, for any
// sample placement — including interior buckets where the pre-fix code
// returned a bucket midpoint.
func TestHistogramQuantileOneIsMax(t *testing.T) {
	var h Histogram
	for _, v := range []float64{100, 5000, 123456, 7.7e8} {
		h.Observe(v)
		if q, m := h.Quantile(1), h.Max(); q != m {
			t.Fatalf("after observing %g: Quantile(1) = %g != Max() = %g", v, q, m)
		}
	}
}

// TestHistogramQuantileProperties is the property test: for random sample
// sets, quantiles are monotone non-decreasing in p and bracketed by
// [min(histMinNS/2, Max()), Max()].
func TestHistogramQuantileProperties(t *testing.T) {
	x := uint64(99991)
	rnd := func() float64 {
		x = x*6364136223846793005 + 1442695040888963407
		return float64(x>>11) / float64(1<<53)
	}
	for trial := 0; trial < 50; trial++ {
		var h Histogram
		n := 1 + int(rnd()*500)
		for i := 0; i < n; i++ {
			// Span bucket 0 through the overflow bucket (~1e13).
			h.Observe(math.Pow(10, 13*rnd()))
		}
		lo := math.Min(histMinNS/2, h.Max())
		prev := 0.0
		for p := 0.01; p <= 1.0; p += 0.01 {
			q := h.Quantile(p)
			if q < prev {
				t.Fatalf("trial %d: Quantile(%g) = %g < Quantile(%g) = %g — not monotone",
					trial, p, q, p-0.01, prev)
			}
			if q < lo || q > h.Max() {
				t.Fatalf("trial %d: Quantile(%g) = %g outside [%g, %g]", trial, p, q, lo, h.Max())
			}
			prev = q
		}
	}
}

// TestHistogramConcurrent checks the CAS float accumulators under parallel
// writers: identical values sum exactly, so the mean must be bit-exact.
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const writers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(1000)
			}
		}()
	}
	wg.Wait()
	if h.Count() != writers*per {
		t.Fatalf("count %d", h.Count())
	}
	if h.Mean() != 1000 {
		t.Fatalf("mean %v", h.Mean())
	}
	if h.Max() != 1000 {
		t.Fatalf("max %v", h.Max())
	}
}

// TestHistogramConcurrentReaders hammers Observe, Quantile, Mean, and Max
// from parallel goroutines — run under -race in CI. Readers only assert
// invariants that hold mid-flight.
func TestHistogramConcurrentReaders(t *testing.T) {
	var h Histogram
	const writers, readers, per = 4, 4, 5000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			x := seed
			for i := 0; i < per; i++ {
				x = x*6364136223846793005 + 1442695040888963407
				h.Observe(math.Pow(10, 13*float64(x>>11)/float64(1<<53)))
			}
		}(uint64(w + 1))
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				q50, q99 := h.Quantile(0.5), h.Quantile(0.99)
				if q50 < 0 || q99 < 0 {
					t.Error("negative quantile")
					return
				}
				if h.Mean() < 0 || h.Count() < 0 {
					t.Error("negative mean or count")
					return
				}
				_ = h.Max()
			}
		}()
	}
	wg.Wait()
	if h.Count() != writers*per {
		t.Fatalf("count %d", h.Count())
	}
	if q := h.Quantile(1); q != h.Max() {
		t.Fatalf("Quantile(1) = %g != Max() = %g", q, h.Max())
	}
}

// TestMetricAllocs pins the record path allocation-free — the guarantee
// that lets sim/search/fleet instrument warm paths without breaking PR 4's
// zero-alloc warm-MVM assertion.
func TestMetricAllocs(t *testing.T) {
	var h Histogram
	var c Counter
	var g Gauge
	if a := testing.AllocsPerRun(1000, func() { h.Observe(1234) }); a != 0 {
		t.Errorf("Histogram.Observe allocates %v per call", a)
	}
	if a := testing.AllocsPerRun(1000, func() { c.Inc(); c.Add(3) }); a != 0 {
		t.Errorf("Counter ops allocate %v per call", a)
	}
	if a := testing.AllocsPerRun(1000, func() { g.Set(1); g.Add(2) }); a != 0 {
		t.Errorf("Gauge ops allocate %v per call", a)
	}
}
