package obs

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Span is a lightweight trace span: a named timed region with parent/child
// nesting, built for attributing wall time to pipeline stages (decide /
// simulate / learn in the search loop; quantize / pack / stream in the
// engine). Spans are owned by a single goroutine — they carry no locks and
// must not be shared across goroutines while open. Cross-goroutine stage
// attribution uses registry counters instead (Counter.AddSince).
type Span struct {
	Name     string
	start    time.Time
	dur      time.Duration
	parent   *Span
	children []*Span
	ended    bool
}

// StartSpan opens a root span.
func StartSpan(name string) *Span {
	return &Span{Name: name, start: time.Now()}
}

// Child opens a nested span under s.
func (s *Span) Child(name string) *Span {
	c := &Span{Name: name, start: time.Now(), parent: s}
	s.children = append(s.children, c)
	return c
}

// End closes the span and returns its duration. Ending twice is a no-op
// that returns the first duration.
func (s *Span) End() time.Duration {
	if !s.ended {
		s.dur = time.Since(s.start)
		s.ended = true
	}
	return s.dur
}

// Duration returns the span's duration — elapsed-so-far when still open.
func (s *Span) Duration() time.Duration {
	if s.ended {
		return s.dur
	}
	return time.Since(s.start)
}

// Parent returns the enclosing span (nil for a root).
func (s *Span) Parent() *Span { return s.parent }

// Walk visits s and every descendant depth-first, in start order, with the
// node's depth below s.
func (s *Span) Walk(fn func(sp *Span, depth int)) {
	s.walk(fn, 0)
}

func (s *Span) walk(fn func(sp *Span, depth int), depth int) {
	fn(s, depth)
	for _, c := range s.children {
		c.walk(fn, depth+1)
	}
}

// Durations sums the subtree's time by span name — the per-stage
// attribution map. Repeated stages (one child per round) accumulate.
func (s *Span) Durations() map[string]time.Duration {
	out := map[string]time.Duration{}
	s.Walk(func(sp *Span, _ int) { out[sp.Name] += sp.Duration() })
	return out
}

// Record adds the subtree's per-stage durations to registry counters named
// family{stage="<name>"} in nanoseconds. The root's own name is included,
// so family totals can be compared against the sum of stages.
func (s *Span) Record(r *Registry, familyName, help string) {
	for name, d := range s.Durations() {
		r.Counter(fmt.Sprintf("%s{stage=%q}", familyName, name), help).Add(int64(d))
	}
}

// String renders the span tree with per-node durations, children indented
// under parents — a poor man's trace viewer for -v test logs and debugging.
func (s *Span) String() string {
	var b strings.Builder
	s.Walk(func(sp *Span, depth int) {
		fmt.Fprintf(&b, "%s%s %s\n", strings.Repeat("  ", depth), sp.Name, sp.Duration().Round(time.Microsecond))
	})
	return b.String()
}

// StageBreakdown formats a Durations-style map as "name=dur" pairs sorted
// by descending duration — compact stage attribution for progress lines.
func StageBreakdown(d map[string]time.Duration) string {
	type kv struct {
		k string
		v time.Duration
	}
	pairs := make([]kv, 0, len(d))
	for k, v := range d {
		pairs = append(pairs, kv{k, v})
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].v != pairs[j].v {
			return pairs[i].v > pairs[j].v
		}
		return pairs[i].k < pairs[j].k
	})
	parts := make([]string, len(pairs))
	for i, p := range pairs {
		parts[i] = fmt.Sprintf("%s=%s", p.k, p.v.Round(time.Microsecond))
	}
	return strings.Join(parts, " ")
}
