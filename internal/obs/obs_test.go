package obs

import (
	"strings"
	"testing"
	"time"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("a_total", "help a")
	c2 := r.Counter("a_total", "other help ignored")
	if c1 != c2 {
		t.Fatal("Counter must return the same handle for the same name")
	}
	c1.Add(5)
	if c2.Load() != 5 {
		t.Fatalf("shared handle out of sync: %d", c2.Load())
	}
	g := r.Gauge("b", "help b")
	g.Set(2.5)
	if r.Gauge("b", "").Load() != 2.5 {
		t.Fatal("Gauge must return the same handle for the same name")
	}
	h := r.Histogram("c_ns", "help c")
	h.Observe(100)
	if r.Histogram("c_ns", "").Count() != 1 {
		t.Fatal("Histogram must return the same handle for the same name")
	}
}

func TestRegistryKindClashPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("registering a gauge over a counter name must panic")
		}
	}()
	r.Gauge("x", "")
}

func TestRegistryRebind(t *testing.T) {
	r := NewRegistry()
	var c1, c2 Counter
	c1.Add(10)
	c2.Add(20)
	r.RegisterCounter("ext_total", "", &c1)
	r.RegisterCounter("ext_total", "", &c2) // rebuilt component re-claims the series
	snap := r.JSON()
	if snap.Counters["ext_total"] != 20 {
		t.Fatalf("rebind: got %d, want 20", snap.Counters["ext_total"])
	}
	n := 0
	r.CounterFunc("fn_total", "", func() int64 { n++; return int64(n) })
	r.CounterFunc("fn_total", "", func() int64 { return 42 })
	if got := r.JSON().Counters["fn_total"]; got != 42 {
		t.Fatalf("CounterFunc replace: got %d, want 42", got)
	}
	if n != 0 {
		t.Fatal("replaced callback was invoked")
	}
}

func TestFamilies(t *testing.T) {
	r := NewRegistry()
	r.Counter(`f_total{k="a"}`, "")
	r.Counter(`f_total{k="b"}`, "")
	r.Gauge("g", "")
	fams := r.Families()
	if len(fams) != 2 || fams[0] != "f_total" || fams[1] != "g" {
		t.Fatalf("Families() = %v", fams)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter(`req_total{outcome="ok"}`, "request outcomes").Add(3)
	r.Counter(`req_total{outcome="shed"}`, "request outcomes").Add(1)
	r.Gauge("depth", "queue depth").Set(7)
	r.GaugeFunc("health", "replica health", func() float64 { return 0.5 })
	h := r.Histogram("lat_ns", "latency")
	h.Observe(1000)
	h.Observe(2000)
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# HELP req_total request outcomes\n",
		"# TYPE req_total counter\n",
		`req_total{outcome="ok"} 3` + "\n",
		`req_total{outcome="shed"} 1` + "\n",
		"# TYPE depth gauge\n",
		"depth 7\n",
		"health 0.5\n",
		"# TYPE lat_ns summary\n",
		`lat_ns{quantile="0.5"}`,
		"lat_ns_sum 3000\n",
		"lat_ns_count 2\n",
		"# TYPE lat_ns_max gauge\n",
		"lat_ns_max 2000\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// One header per family, not per series.
	if strings.Count(out, "# TYPE req_total counter") != 1 {
		t.Errorf("family header repeated:\n%s", out)
	}
}

func TestPrometheusLabeledHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram(`lat_ns{replica="g0-1"}`, "")
	h.Observe(500)
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		`lat_ns{replica="g0-1",quantile="0.5"}`,
		`lat_ns_sum{replica="g0-1"} 500`,
		`lat_ns_count{replica="g0-1"} 1`,
		`lat_ns_max{replica="g0-1"} 500`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("labeled summary missing %q in:\n%s", want, out)
		}
	}
}

func TestJSONSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "").Add(9)
	r.CounterFunc("cf_total", "", func() int64 { return 11 })
	r.Gauge("g", "").Set(1.5)
	h := r.Histogram("h_ns", "")
	h.Observe(100)
	h.Observe(300)
	s := r.JSON()
	if s.Counters["c_total"] != 9 || s.Counters["cf_total"] != 11 {
		t.Fatalf("counters: %+v", s.Counters)
	}
	if s.Gauges["g"] != 1.5 {
		t.Fatalf("gauges: %+v", s.Gauges)
	}
	hs := s.Histograms["h_ns"]
	if hs.Count != 2 || hs.Mean != 200 || hs.Max != 300 {
		t.Fatalf("histogram stats: %+v", hs)
	}
	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"c_total": 9`) {
		t.Fatalf("WriteJSON output:\n%s", b.String())
	}
}

func TestSpans(t *testing.T) {
	root := StartSpan("search")
	d1 := root.Child("decide")
	time.Sleep(time.Millisecond)
	d1.End()
	s1 := root.Child("simulate")
	inner := s1.Child("mvm")
	time.Sleep(time.Millisecond)
	inner.End()
	s1.End()
	// Second round: same stage names accumulate.
	d2 := root.Child("decide")
	time.Sleep(time.Millisecond)
	d2.End()
	root.End()

	if d1.Parent() != root || inner.Parent() != s1 {
		t.Fatal("parent links wrong")
	}
	durs := root.Durations()
	if durs["decide"] < 2*time.Millisecond {
		t.Fatalf("decide did not accumulate across rounds: %v", durs["decide"])
	}
	if durs["simulate"] < durs["mvm"] {
		t.Fatalf("parent %v shorter than child %v", durs["simulate"], durs["mvm"])
	}
	if durs["search"] < durs["decide"]+durs["simulate"] {
		t.Fatalf("root %v shorter than children", durs["search"])
	}
	// End is idempotent.
	if a, b := root.End(), root.End(); a != b {
		t.Fatal("End not idempotent")
	}

	var order []string
	var depths []int
	root.Walk(func(sp *Span, depth int) {
		order = append(order, sp.Name)
		depths = append(depths, depth)
	})
	wantOrder := []string{"search", "decide", "simulate", "mvm", "decide"}
	for i, w := range wantOrder {
		if order[i] != w {
			t.Fatalf("walk order %v, want %v", order, wantOrder)
		}
	}
	if depths[3] != 2 {
		t.Fatalf("mvm depth %d, want 2", depths[3])
	}
	if s := root.String(); !strings.Contains(s, "  simulate") || !strings.Contains(s, "    mvm") {
		t.Fatalf("String() indentation wrong:\n%s", s)
	}

	r := NewRegistry()
	root.Record(r, "autohet_search_stage_ns_total", "time per search stage")
	snap := r.JSON()
	if snap.Counters[`autohet_search_stage_ns_total{stage="decide"}`] < int64(2*time.Millisecond) {
		t.Fatalf("Record counters: %+v", snap.Counters)
	}
	if bd := StageBreakdown(durs); !strings.Contains(bd, "search=") || !strings.Contains(bd, "decide=") {
		t.Fatalf("StageBreakdown: %s", bd)
	}
}
