package obs

import (
	"math"
	"sync/atomic"
)

// Histogram is a concurrent latency histogram over geometrically growing
// buckets, promoted from internal/fleet so every subsystem shares one
// implementation. Observations are nanoseconds; quantiles are nearest-rank
// over the bucket boundaries, so a reported quantile is within one
// bucket-growth factor (~7%) of the exact value. The exact running max is
// tracked separately, the overflow bucket reports it instead of a midpoint,
// and no reported quantile ever exceeds it.
type Histogram struct {
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the running sum
	maxBits atomic.Uint64 // float64 bits of the running max
	buckets [histBuckets]atomic.Int64
}

const (
	histMinNS   = 64.0 // lower edge of bucket 1; bucket 0 is [0, histMinNS)
	histGrowth  = 1.07
	histBuckets = 360 // covers up to histMinNS * 1.07^359 ≈ 2.28e12 ns
)

var histLogGrowth = math.Log(histGrowth)

// HistMinNS is the lower edge of bucket 1 (bucket 0 covers [0, HistMinNS)).
// Exported for tests that reason about bucket geometry.
const HistMinNS = histMinNS

// HistMaxEdge is the lower edge of the overflow bucket: samples at or above
// it are clamped into the final bucket and reported via the tracked max.
var HistMaxEdge = histMinNS * math.Pow(histGrowth, histBuckets-2)

// Observe records one latency sample.
func (h *Histogram) Observe(ns float64) {
	if ns < 0 || math.IsNaN(ns) {
		return
	}
	h.count.Add(1)
	addFloat(&h.sumBits, ns)
	maxFloat(&h.maxBits, ns)
	h.buckets[bucketIndex(ns)].Add(1)
}

func bucketIndex(ns float64) int {
	if ns < histMinNS {
		return 0
	}
	i := 1 + int(math.Log(ns/histMinNS)/histLogGrowth)
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// addFloat atomically adds v to the float64 stored as bits in a.
func addFloat(a *atomic.Uint64, v float64) {
	for {
		old := a.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if a.CompareAndSwap(old, nw) {
			return
		}
	}
}

// maxFloat atomically raises the float64 stored as bits in a to at least v.
func maxFloat(a *atomic.Uint64, v float64) {
	for {
		old := a.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if a.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed latencies.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Mean returns the mean observed latency (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load()) / float64(n)
}

// Max returns the largest observed latency.
func (h *Histogram) Max() float64 { return math.Float64frombits(h.maxBits.Load()) }

// Quantile returns the p-quantile (nearest-rank over buckets); interior
// buckets report their geometric midpoint. p outside (0,1] is clamped, and
// Quantile(1) is exactly Max(). Samples clamped into the overflow bucket
// report the tracked max rather than the bucket midpoint, so tail quantiles
// are never underestimated, and every reported quantile is capped at Max()
// so they are never overestimated either.
func (h *Histogram) Quantile(p float64) float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if p >= 1 {
		return h.Max()
	}
	if p <= 0 {
		p = 1e-9
	}
	rank := int64(math.Ceil(p * float64(n)))
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= rank {
			if i == histBuckets-1 {
				// Overflow bucket: its midpoint is meaningless for clamped
				// samples; the tracked max is the honest tail estimate.
				return h.Max()
			}
			mid := histMinNS / 2
			if i > 0 {
				lower := histMinNS * math.Pow(histGrowth, float64(i-1))
				mid = lower * math.Sqrt(histGrowth)
			}
			return math.Min(mid, h.Max())
		}
	}
	return h.Max()
}
