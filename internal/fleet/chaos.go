package fleet

import (
	"fmt"
	"math"
	"sync"
	"time"

	"autohet/internal/chaos"
	"autohet/internal/fault"
	"autohet/internal/obs"
)

// Chaos injection for the goroutine runtime. Fault events either mutate
// cheap per-replica atomics (crash flag, fail-slow factor, link cost) read
// by the batching loops, or drive the existing repair sweep path (Faults
// storms land as fault.Model injections that the online health loop heals).
// The chaos driver (StartChaos) replays a chaos.Schedule against the
// fleet's virtual clock so the same schedule that runs in seconds on the
// DES engine paces faithfully here.

// Crash fail-stops the named replica: it counts as degraded, so its
// batching loop bounces queued work back to retry routing and dispatch
// stops choosing it. Restart undoes it.
func (f *Fleet) Crash(name string) error {
	r := f.replicaByName(name)
	if r == nil {
		return fmt.Errorf("fleet: no replica %q", name)
	}
	r.crashed.Store(true)
	return nil
}

// Restart returns a crashed replica to service.
func (f *Fleet) Restart(name string) error {
	r := f.replicaByName(name)
	if r == nil {
		return fmt.Errorf("fleet: no replica %q", name)
	}
	r.crashed.Store(false)
	return nil
}

// SetSlowFactor installs a fail-slow service multiplier on the named
// replica (1 restores full speed; values < 1 are rejected — chaos degrades,
// it does not overclock).
func (f *Fleet) SetSlowFactor(name string, factor float64) error {
	if factor < 1 || math.IsNaN(factor) || math.IsInf(factor, 0) {
		return fmt.Errorf("fleet: slow factor %v (want >= 1)", factor)
	}
	r := f.replicaByName(name)
	if r == nil {
		return fmt.Errorf("fleet: no replica %q", name)
	}
	if factor == 1 {
		r.slowBits.Store(0)
		return nil
	}
	r.slowBits.Store(math.Float64bits(factor))
	return nil
}

// SetLinkPenalty adds ns of degraded NoC/link transfer cost to every batch
// the named replica serves (0 restores the healthy link).
func (f *Fleet) SetLinkPenalty(name string, ns float64) error {
	if ns < 0 || math.IsNaN(ns) || math.IsInf(ns, 0) {
		return fmt.Errorf("fleet: link penalty %v ns", ns)
	}
	r := f.replicaByName(name)
	if r == nil {
		return fmt.Errorf("fleet: no replica %q", name)
	}
	if ns == 0 {
		r.linkBits.Store(0)
		return nil
	}
	r.linkBits.Store(math.Float64bits(ns))
	return nil
}

func (f *Fleet) replicaByName(name string) *replica {
	for _, r := range f.replicas {
		if r.name == name {
			return r
		}
	}
	return nil
}

// Apply executes one chaos event now. Faults events route through
// InjectFault, so the online repair sweeps heal the storm exactly as a
// directly injected fault model would.
func (f *Fleet) Apply(ev chaos.Event) error {
	switch ev.Kind {
	case chaos.Crash:
		return f.Crash(ev.Target)
	case chaos.Restart:
		return f.Restart(ev.Target)
	case chaos.Slow:
		factor := ev.Value
		if factor <= 0 {
			factor = 1
		}
		return f.SetSlowFactor(ev.Target, factor)
	case chaos.Link:
		return f.SetLinkPenalty(ev.Target, ev.Value)
	case chaos.Faults:
		if ev.Value <= 0 {
			return f.InjectFault(ev.Target, nil)
		}
		return f.InjectFault(ev.Target, &fault.Model{StuckAtZero: ev.Value, Seed: f.cfg.Seed})
	}
	return fmt.Errorf("fleet: unknown chaos event kind %q", ev.Kind)
}

// StartChaos replays the schedule against the fleet's virtual clock in a
// background goroutine: each event waits until VirtualNow reaches its
// timestamp (re-deriving the wall deadline every tick, so Run's clock
// resets are honored), then applies. The returned stop function cancels the
// replay and waits for the driver to exit; it must be called before Close
// returns the fleet to the caller's control flow (the driver also exits on
// fleet shutdown). Apply errors on unknown replicas are ignored — a
// schedule may name replicas a particular fleet does not have.
func (f *Fleet) StartChaos(sched *chaos.Schedule) (stop func()) {
	quit := make(chan struct{})
	var wg sync.WaitGroup
	counter := obs.Default.Counter(`autohet_chaos_events_total{engine="goroutine"}`,
		"Chaos fault events applied to the goroutine fleet.")
	wg.Add(1)
	go func() {
		defer wg.Done()
		if sched == nil {
			return
		}
		for _, ev := range sched.Events {
			if !f.waitVirtual(ev.AtNS, quit) {
				return
			}
			if err := f.Apply(ev); err == nil {
				counter.Add(1)
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(quit) })
		wg.Wait()
	}
}

// waitVirtual sleeps until the fleet's virtual clock reaches virtualNS,
// re-checking against clock resets, or returns false when cancelled.
func (f *Fleet) waitVirtual(virtualNS float64, quit chan struct{}) bool {
	for {
		now := f.VirtualNow()
		if now >= virtualNS {
			select {
			case <-quit:
				return false
			case <-f.quit:
				return false
			default:
				return true
			}
		}
		d := f.scaled(virtualNS - now)
		// Cap each sleep so a resetClock mid-wait (Run re-anchoring the
		// epoch) is noticed promptly instead of overshooting.
		if d > 10*time.Millisecond {
			d = 10 * time.Millisecond
		}
		if d < time.Microsecond {
			d = time.Microsecond
		}
		timer := time.NewTimer(d)
		select {
		case <-timer.C:
		case <-quit:
			timer.Stop()
			return false
		case <-f.quit:
			timer.Stop()
			return false
		}
	}
}
