// Package fleet is a goroutine-based serving runtime that dispatches
// inference requests across N replica accelerators. Each replica wraps a
// mapped design (accel.Plan) whose pipelined timing (sim.PipelineResult)
// supplies its service rate, so AutoHet-searched and homogeneous designs
// can be mixed in one fleet. The runtime provides pluggable load-balancing
// policies, per-replica dynamic batching (close a batch at size B or after
// a timeout), bounded admission queues with shedding, per-request latency
// budgets, an online health loop (periodic fault-detection sweeps that
// self-repair onto spare capacity and feed a continuous health score into
// the queue-aware policies), retry routing away from fully degraded
// replicas, graceful drain, and built-in counters/latency histograms.
//
// Time model: requests carry virtual arrival stamps in nanoseconds and all
// queueing/latency accounting is done in that virtual clock using the exact
// pipelined-service recurrence (entry = max(arrival, replica-free),
// completion = entry + fill + i·interval within a batch). Wall-clock sleeps
// scaled by Config.TimeScale only pace the system so queue depths — and the
// routing decisions reading them — evolve realistically; with a single
// replica and no batching the accounting reduces to exactly
// serving.Serve's recurrence regardless of scheduling jitter.
package fleet

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"autohet/internal/chaos"
	"autohet/internal/fault"
)

// Policy names a dispatcher load-balancing policy.
type Policy string

// The built-in policies.
const (
	// RoundRobin cycles through healthy replicas regardless of load.
	RoundRobin Policy = "rr"
	// LeastOutstanding picks the replica with the fewest queued+executing
	// requests.
	LeastOutstanding Policy = "least-outstanding"
	// JoinShortestQueue picks the replica with the shortest admission queue.
	JoinShortestQueue Policy = "jsq"
	// PowerOfTwo samples two random replicas and picks the shorter queue —
	// near-JSQ quality at O(1) inspection cost.
	PowerOfTwo Policy = "p2c"
)

// Policies lists every built-in policy.
var Policies = []Policy{RoundRobin, LeastOutstanding, JoinShortestQueue, PowerOfTwo}

// ParsePolicy resolves a policy name (accepting a few aliases).
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "rr", "roundrobin", "round-robin":
		return RoundRobin, nil
	case "lo", "least-outstanding", "leastoutstanding":
		return LeastOutstanding, nil
	case "jsq", "join-shortest-queue":
		return JoinShortestQueue, nil
	case "p2c", "power-of-two", "poweroftwo":
		return PowerOfTwo, nil
	}
	return "", fmt.Errorf("fleet: unknown policy %q (have %v)", s, Policies)
}

// Config tunes the runtime. The zero value of each field selects the
// documented default.
type Config struct {
	// Policy is the dispatch policy (default RoundRobin).
	Policy Policy
	// MaxBatch closes a replica batch at this size (default 1 = no
	// batching).
	MaxBatch int
	// BatchTimeoutNS closes a partial batch this many virtual nanoseconds
	// after its first request was picked up (default 100 µs). Only
	// meaningful with MaxBatch > 1.
	BatchTimeoutNS float64
	// QueueDepth bounds each replica's admission queue (default 256). A
	// request finding every healthy queue full is shed.
	QueueDepth int
	// MaxRetries bounds re-dispatches when a replica degrades with the
	// request still queued (default 3).
	MaxRetries int
	// DegradeThreshold is the uncovered stuck-at cell fault rate at which a
	// replica's health score reaches zero and it stops taking traffic
	// (default 0.01). Below the threshold, health falls linearly —
	// health = 1 − uncoveredRate/DegradeThreshold — and the queue-aware
	// policies shift traffic away proportionally.
	DegradeThreshold float64
	// HealthSweepNS is the virtual-time period of the online health loop:
	// every period each replica runs one detection/repair sweep over its
	// pending fault ledger (default 1 ms virtual). Negative disables the
	// background loop — tests and experiments then step repair
	// deterministically with Fleet.Sweep.
	HealthSweepNS float64
	// TimeScale is the wall-clock pacing factor: a virtual duration of
	// d nanoseconds sleeps d·TimeScale real nanoseconds (default 1.0 —
	// real time). Tiny values (e.g. 1e-9) make the fleet free-running:
	// accounting stays exact but queue depths reflect burst order rather
	// than paced arrivals.
	TimeScale float64
	// Seed drives the PowerOfTwo sampler (default 1).
	Seed int64
	// Breaker, when set, arms a per-replica circuit breaker
	// (chaos.Breaker): dispatch skips replicas whose breaker refuses
	// traffic, outcomes feed the state machine (served/expired requests
	// and degraded-replica bounces), and open breakers heal via half-open
	// probes. Nil (the default) disables breakers entirely.
	Breaker *chaos.BreakerConfig
	// Shards splits the fleet into that many pipeline-parallel stages
	// (default 1 — every replica hosts the whole model). Replicas are
	// grouped into contiguous near-equal stages in construction order
	// (replica i serves stage i·Shards/N-ish, mirroring the DES cluster
	// bounds), and a request chains through one replica per stage:
	// admission dispatches into stage 0, each stage's completion re-routes
	// the request into the next stage's queues, and only the final stage
	// resolves it. Latency and budget accounting stay anchored at the
	// original arrival.
	Shards int
	// StageTransferNS prices the inter-stage activation handoffs: entry s
	// is added to a request's virtual timeline between its completion on
	// stage s and its arrival at stage s+1 (typically
	// sim.ShardStage.TransferNS, the mesh-priced activation transfer).
	// Nil means free transfers; otherwise the length must be Shards−1.
	StageTransferNS []float64
}

// DefaultConfig returns the documented defaults.
func DefaultConfig() Config {
	return Config{
		Policy:           RoundRobin,
		MaxBatch:         1,
		BatchTimeoutNS:   100_000,
		QueueDepth:       256,
		MaxRetries:       3,
		DegradeThreshold: 0.01,
		HealthSweepNS:    1e6,
		TimeScale:        1.0,
		Seed:             1,
	}
}

func (c *Config) normalize() error {
	if c.Policy == "" {
		c.Policy = RoundRobin
	}
	if _, err := ParsePolicy(string(c.Policy)); err != nil {
		return err
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 1
	}
	if c.MaxBatch < 1 {
		return fmt.Errorf("fleet: max batch %d", c.MaxBatch)
	}
	if c.BatchTimeoutNS == 0 {
		c.BatchTimeoutNS = 100_000
	}
	if c.BatchTimeoutNS < 0 {
		return fmt.Errorf("fleet: batch timeout %v ns", c.BatchTimeoutNS)
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 256
	}
	if c.QueueDepth < 1 {
		return fmt.Errorf("fleet: queue depth %d", c.QueueDepth)
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
	if c.MaxRetries < 0 {
		return fmt.Errorf("fleet: max retries %d", c.MaxRetries)
	}
	if c.DegradeThreshold == 0 {
		c.DegradeThreshold = 0.01
	}
	if c.HealthSweepNS == 0 {
		c.HealthSweepNS = 1e6
	}
	if c.TimeScale == 0 {
		c.TimeScale = 1.0
	}
	if c.TimeScale < 0 {
		return fmt.Errorf("fleet: time scale %v", c.TimeScale)
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Shards == 0 {
		c.Shards = 1
	}
	if c.Shards < 1 {
		return fmt.Errorf("fleet: %d shard stages", c.Shards)
	}
	if c.StageTransferNS != nil && len(c.StageTransferNS) != c.Shards-1 {
		return fmt.Errorf("fleet: %d stage transfers for %d shard stages", len(c.StageTransferNS), c.Shards)
	}
	for i, t := range c.StageTransferNS {
		if t < 0 || math.IsNaN(t) {
			return fmt.Errorf("fleet: stage %d transfer %v ns", i, t)
		}
	}
	return nil
}

// Fleet dispatches requests across replicas. Create with New; it is safe
// for concurrent use by any number of submitters.
type Fleet struct {
	cfg      Config
	replicas []*replica

	// stageLo holds the pipeline-stage bounds over replicas: stage s is
	// replicas[stageLo[s]:stageLo[s+1]] (one stage spanning everything when
	// sharding is off). rr holds one round-robin cursor per stage.
	stageLo []int
	rr      []atomic.Uint64

	rngMu    sync.Mutex
	rng      *rand.Rand
	counters Counters
	hist     Histogram

	// invScale is round(1/TimeScale) when TimeScale is exactly the
	// reciprocal of an integer, else 0; virtualNS uses it for exact
	// integer clock conversion.
	invScale int64

	// epoch anchors the virtual clock to the wall clock (UnixNano at start
	// or the latest resetClock). Pacing sleeps target absolute deadlines
	// derived from it, so timer overshoot never accumulates.
	epoch atomic.Int64
	// clockGen counts clock resets; replica loops compare it against their
	// cached copy to invalidate pipeline-free timestamps from a previous
	// timeline.
	clockGen atomic.Uint64

	// mu serializes admission against Close so the outstanding WaitGroup
	// is never Add-ed concurrently with its final Wait.
	mu          sync.RWMutex
	closed      bool
	outstanding sync.WaitGroup
	quit        chan struct{}
	loops       sync.WaitGroup
	closeOnce   sync.Once
}

// New builds the fleet and starts one batching loop per replica. Callers
// must Close it to drain and stop the loops.
func New(cfg Config, specs ...ReplicaSpec) (*Fleet, error) {
	f, err := newFleet(cfg, specs...)
	if err != nil {
		return nil, err
	}
	f.start()
	return f, nil
}

// newFleet constructs without starting the replica loops (tests stage
// queue contents deterministically before starting).
func newFleet(cfg Config, specs ...ReplicaSpec) (*Fleet, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("fleet: no replicas")
	}
	f := &Fleet{
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		quit: make(chan struct{}),
	}
	if r := math.Round(1 / cfg.TimeScale); r >= 1 && r <= math.MaxInt64 && 1/r == cfg.TimeScale {
		f.invScale = int64(r)
	}
	names := map[string]bool{}
	for i, spec := range specs {
		r, err := newReplica(i, spec, &cfg)
		if err != nil {
			return nil, err
		}
		if names[r.name] {
			return nil, fmt.Errorf("fleet: duplicate replica name %q", r.name)
		}
		names[r.name] = true
		f.replicas = append(f.replicas, r)
	}
	k := cfg.Shards
	if len(f.replicas) < k {
		return nil, fmt.Errorf("fleet: %d shard stages need at least as many replicas, have %d", k, len(f.replicas))
	}
	f.stageLo = make([]int, k+1)
	f.rr = make([]atomic.Uint64, k)
	for s := 0; s <= k; s++ {
		f.stageLo[s] = s * len(f.replicas) / k
	}
	for s := 0; s < k; s++ {
		for _, r := range f.replicas[f.stageLo[s]:f.stageLo[s+1]] {
			r.stage = s
		}
	}
	f.registerMetrics()
	return f, nil
}

// stageReplicas returns the replicas serving pipeline stage s.
func (f *Fleet) stageReplicas(s int) []*replica {
	return f.replicas[f.stageLo[s]:f.stageLo[s+1]]
}

// transferNS is the priced activation handoff between stages s and s+1.
func (f *Fleet) transferNS(s int) float64 {
	if f.cfg.StageTransferNS == nil {
		return 0
	}
	return f.cfg.StageTransferNS[s]
}

func (f *Fleet) start() {
	f.resetClock()
	for _, r := range f.replicas {
		f.loops.Add(1)
		go r.loop(f)
	}
	if f.cfg.HealthSweepNS > 0 {
		f.loops.Add(1)
		go f.sweeper()
	}
}

// sweeper is the online health loop: every HealthSweepNS of virtual time it
// runs one detection/repair sweep across the fleet. The wall tick is
// clamped so free-running fleets (tiny TimeScale) don't spin.
func (f *Fleet) sweeper() {
	defer f.loops.Done()
	d := f.scaled(f.cfg.HealthSweepNS)
	if d < time.Millisecond {
		d = time.Millisecond
	}
	t := time.NewTicker(d)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			f.Sweep()
		case <-f.quit:
			return
		}
	}
}

// Sweep runs one detection/repair pass on every replica: each detects
// (1−MissRate) of its pending faults, repairs them from remaining spare
// capacity, masks the overflow, and refreshes its health score. The
// background health loop calls it periodically; tests and experiments may
// call it directly to step self-healing deterministically.
func (f *Fleet) Sweep() {
	for _, r := range f.replicas {
		r.sweep(f.cfg.DegradeThreshold)
	}
}

// VirtualNow returns the current virtual time in nanoseconds on the fleet's
// clock — the workload-facing timeline the pacing sleeps track.
func (f *Fleet) VirtualNow() float64 {
	return f.virtualNS(time.Now().UnixNano() - f.epoch.Load())
}

// virtualNS converts a wall-clock nanosecond delta to virtual nanoseconds.
// Wall deltas are exact integers, so for integer-reciprocal time scales
// (TimeScale = 1/k: real time 1.0, the free-running 1e-9, experiment scales
// like 0.2) the conversion multiplies in integer arithmetic and converts
// once — exact while delta·k fits float64's 2^53 integer range. Past that,
// and for non-reciprocal scales, a single correctly-rounded float64
// division bounds the error at 1 ulp (relative ~1e-16); the error is
// per-read, never accumulated, because every read re-derives from the
// integer wall delta.
func (f *Fleet) virtualNS(wallDeltaNS int64) float64 {
	if f.invScale > 0 && wallDeltaNS >= 0 {
		hi, lo := bits.Mul64(uint64(wallDeltaNS), uint64(f.invScale))
		if hi == 0 && lo <= 1<<53 {
			return float64(lo)
		}
	}
	return float64(wallDeltaNS) / f.cfg.TimeScale
}

// resetDispatch reseeds the dispatch sampler and round-robin cursor, so
// repeated workloads on one fleet replay identical dispatch decisions
// (Run calls it alongside resetClock).
func (f *Fleet) resetDispatch() {
	f.rngMu.Lock()
	f.rng = rand.New(rand.NewSource(f.cfg.Seed))
	f.rngMu.Unlock()
	for s := range f.rr {
		f.rr[s].Store(0)
	}
}

// resetClock re-anchors virtual time 0 to the present wall-clock instant.
// Run calls it so a fleet built long before its workload (e.g. after an
// expensive mapping phase) does not start with its pacing deadlines already
// in the past. Bumping the generation makes each replica loop drop its
// pipeline-free timestamp from the previous timeline, so back-to-back runs
// on one fleet (e.g. before/after a fault storm) each start from a quiet
// pipeline instead of inheriting stale virtual backlog.
func (f *Fleet) resetClock() {
	f.epoch.Store(time.Now().UnixNano())
	f.clockGen.Add(1)
}

// Submit routes the request to a replica's admission queue. It returns nil
// once the request is accepted (its Outcome will arrive on the request's
// done channel), ErrClosed after Close, ErrNoReplica when every replica is
// degraded (counted Unroutable — an outage), and ErrShed when every healthy
// queue is full (counted Shed — overload backpressure).
func (f *Fleet) Submit(rq *Request) error {
	if rq == nil || rq.done == nil {
		return fmt.Errorf("fleet: request without a done channel")
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	if f.closed {
		return ErrClosed
	}
	f.counters.Submitted.Add(1)
	// A fresh request enters the pipeline at stage 0 with its latency and
	// budget accounting anchored to this arrival (stage hops advance
	// ArrivalNS but never origNS).
	rq.origNS = rq.ArrivalNS
	rq.stage = 0
	r := f.pick(0, nil)
	if r == nil {
		f.counters.Unroutable.Add(1)
		return ErrNoReplica
	}
	if f.enqueue(r, rq) {
		f.routed(r)
		return nil
	}
	// Backpressure: the chosen queue is full — fall back to any healthy
	// (and breaker-routable) stage-0 replica with space before shedding.
	now := f.breakerNow()
	for _, alt := range f.stageReplicas(0) {
		if alt != r && !alt.degraded() && alt.canRoute(now) && f.enqueue(alt, rq) {
			f.routed(alt)
			return nil
		}
	}
	f.counters.Shed.Add(1)
	return ErrShed
}

// breakerNow samples the virtual clock for breaker decisions — only when
// breakers are armed, so breaker-free fleets pay nothing on dispatch.
func (f *Fleet) breakerNow() float64 {
	if f.cfg.Breaker == nil {
		return 0
	}
	return f.VirtualNow()
}

// canRoute consults the replica's breaker (nowNS from breakerNow); replicas
// without one always route.
func (r *replica) canRoute(nowNS float64) bool {
	return r.breaker == nil || r.breaker.CanRoute(nowNS)
}

// routed commits a dispatch decision to the replica's breaker (an open one
// past cooldown claims this request as its half-open probe).
func (f *Fleet) routed(r *replica) {
	if r.breaker != nil {
		r.breaker.OnRoute(f.VirtualNow())
	}
}

// enqueue attempts a non-blocking admission to r. The outstanding counts
// are raised before the channel send: the replica loop may dequeue and
// resolve the request the instant it lands, and resolving before the Add
// would drive the WaitGroup negative.
func (f *Fleet) enqueue(r *replica, rq *Request) bool {
	f.outstanding.Add(1)
	r.outstanding.Add(1)
	select {
	case r.queue <- rq:
		return true
	default:
		r.outstanding.Add(-1)
		f.outstanding.Done()
		return false
	}
}

// pick applies the configured policy over the given stage's healthy
// (health > 0) replicas whose circuit breaker (if armed) admits traffic,
// excluding one. The queue- and load-aware policies minimize
// health-weighted scores, so a partially sick replica keeps serving but
// takes proportionally less traffic.
func (f *Fleet) pick(stage int, exclude *replica) *replica {
	now := f.breakerNow()
	candidates := f.stageReplicas(stage)
	healthy := make([]*replica, 0, len(candidates))
	for _, r := range candidates {
		if r != exclude && !r.degraded() && r.canRoute(now) {
			healthy = append(healthy, r)
		}
	}
	switch len(healthy) {
	case 0:
		return nil
	case 1:
		return healthy[0]
	}
	switch f.cfg.Policy {
	case LeastOutstanding:
		best, bestScore := healthy[0], healthy[0].loadScore()
		for _, r := range healthy[1:] {
			if s := r.loadScore(); s < bestScore {
				best, bestScore = r, s
			}
		}
		return best
	case JoinShortestQueue:
		best, bestScore := healthy[0], healthy[0].queueScore()
		for _, r := range healthy[1:] {
			if s := r.queueScore(); s < bestScore {
				best, bestScore = r, s
			}
		}
		return best
	case PowerOfTwo:
		f.rngMu.Lock()
		i := f.rng.Intn(len(healthy))
		j := f.rng.Intn(len(healthy) - 1)
		f.rngMu.Unlock()
		if j >= i {
			j++
		}
		a, b := healthy[i], healthy[j]
		if b.queueScore() < a.queueScore() {
			return b
		}
		return a
	default: // RoundRobin
		return healthy[f.rr[stage].Add(1)%uint64(len(healthy))]
	}
}

// reroute re-dispatches a request bounced off a degraded replica. The
// request was already admitted, so a dead end resolves it with an error
// instead of returning one.
func (f *Fleet) reroute(from *replica, rq *Request) {
	from.outstanding.Add(-1)
	from.rerouted.Add(1)
	// A bounce off a degraded/crashed replica is a failure signal for its
	// breaker (the health loop may heal it; probes then re-admit traffic).
	if from.breaker != nil {
		from.breaker.Record(f.VirtualNow(), false)
	}
	if rq.attempts >= f.cfg.MaxRetries {
		f.resolve(rq, Outcome{Err: ErrRetries, Replica: from.name, Retries: rq.attempts})
		f.counters.Failed.Add(1)
		return
	}
	rq.attempts++
	f.counters.Retried.Add(1)
	if r := f.pick(rq.stage, from); r != nil && f.requeue(r, rq) {
		f.routed(r)
		return
	}
	now := f.breakerNow()
	for _, alt := range f.stageReplicas(rq.stage) {
		if alt != from && !alt.degraded() && alt.canRoute(now) && f.requeue(alt, rq) {
			f.routed(alt)
			return
		}
	}
	f.resolve(rq, Outcome{Err: ErrNoReplica, Replica: from.name, Retries: rq.attempts})
	f.counters.Failed.Add(1)
}

// advance hands a request that completed stage s to a replica of stage
// s+1 (rq.stage was already advanced and its ArrivalNS moved to the
// transfer-priced handoff time). The request was admitted long ago, so a
// dead end — no healthy next-stage replica with queue space — resolves it
// as failed rather than shedding.
func (f *Fleet) advance(from *replica, rq *Request) {
	from.outstanding.Add(-1)
	if r := f.pick(rq.stage, nil); r != nil && f.requeue(r, rq) {
		f.routed(r)
		return
	}
	now := f.breakerNow()
	for _, alt := range f.stageReplicas(rq.stage) {
		if !alt.degraded() && alt.canRoute(now) && f.requeue(alt, rq) {
			f.routed(alt)
			return
		}
	}
	f.resolve(rq, Outcome{Err: ErrNoReplica, Replica: from.name, Retries: rq.attempts})
	f.counters.Failed.Add(1)
}

// requeue is enqueue for an already-admitted request (the fleet-wide
// outstanding count must not grow again). As in enqueue, the replica count
// rises before the send so it can never dip negative under a racing loop.
func (f *Fleet) requeue(r *replica, rq *Request) bool {
	r.outstanding.Add(1)
	select {
	case r.queue <- rq:
		return true
	default:
		r.outstanding.Add(-1)
		return false
	}
}

// finish resolves a request that replica r has disposed of (served or
// expired) and releases its outstanding slot.
func (f *Fleet) finish(r *replica, rq *Request, out Outcome) {
	r.outstanding.Add(-1)
	switch out.Err {
	case nil:
		f.counters.Completed.Add(1)
		f.hist.Observe(out.LatencyNS)
	case ErrDeadline:
		f.counters.Expired.Add(1)
	default:
		f.counters.Failed.Add(1)
	}
	if r.breaker != nil {
		// Budget expiries count as failures: that is how a breaker notices
		// a fail-slow straggler whose completions never error outright.
		r.breaker.Record(f.VirtualNow(), out.Err == nil)
	}
	f.resolve(rq, out)
}

// resolve delivers the outcome and retires the request from the
// outstanding set.
func (f *Fleet) resolve(rq *Request, out Outcome) {
	rq.done <- out
	f.outstanding.Done()
}

// pace sleeps until the wall-clock instant corresponding to the virtual
// time on the fleet's clock. Absolute deadlines keep sleep overshoot from
// accumulating: an actor that has fallen behind the virtual timeline skips
// sleeping until it catches up.
func (f *Fleet) pace(virtualNS float64) {
	elapsed := time.Duration(time.Now().UnixNano() - f.epoch.Load())
	if d := f.scaled(virtualNS) - elapsed; d > 0 {
		time.Sleep(d)
	}
}

// scaled converts a virtual duration to the wall-clock one.
func (f *Fleet) scaled(virtualNS float64) time.Duration {
	return time.Duration(virtualNS * f.cfg.TimeScale)
}

// InjectFault installs a fault model on the named replica (nil recovers
// it), resets its fault ledger, and runs one immediate detection sweep; the
// health loop (or Fleet.Sweep) then repairs the residue over subsequent
// sweeps when the replica has a RepairSpec. The model's seed is mixed with
// the replica's identity, so injecting one model fleet-wide still fails
// independent cells per replica. Requests queued on a replica whose health
// hits zero are re-dispatched to healthy replicas by its batching loop.
func (f *Fleet) InjectFault(name string, m *fault.Model) error {
	for _, r := range f.replicas {
		if r.name == name {
			return r.injectFault(m, f.cfg.DegradeThreshold)
		}
	}
	return fmt.Errorf("fleet: no replica %q", name)
}

// Close stops admission, waits for every accepted request to resolve
// (graceful drain — queued work still executes, and work stranded on
// degraded replicas is retried elsewhere), then stops the replica loops.
// It is idempotent and safe to call concurrently.
func (f *Fleet) Close() {
	f.mu.Lock()
	f.closed = true
	f.mu.Unlock()
	f.closeOnce.Do(func() {
		f.outstanding.Wait()
		close(f.quit)
	})
	f.loops.Wait()
}

// Snapshot returns a point-in-time view of the fleet and its replicas.
func (f *Fleet) Snapshot() *Snapshot {
	s := &Snapshot{
		Submitted:  f.counters.Submitted.Load(),
		Completed:  f.counters.Completed.Load(),
		Shed:       f.counters.Shed.Load(),
		Unroutable: f.counters.Unroutable.Load(),
		Expired:    f.counters.Expired.Load(),
		Retried:    f.counters.Retried.Load(),
		Failed:     f.counters.Failed.Load(),
		MeanNS:     f.hist.Mean(),
		P50NS:      f.hist.Quantile(0.50),
		P95NS:      f.hist.Quantile(0.95),
		P99NS:      f.hist.Quantile(0.99),
		MaxNS:      f.hist.Max(),
	}
	for _, r := range f.replicas {
		s.Replicas = append(s.Replicas, r.snapshot())
	}
	return s
}

// Replicas returns the replica names in construction order.
func (f *Fleet) Replicas() []string {
	names := make([]string, len(f.replicas))
	for i, r := range f.replicas {
		names[i] = r.name
	}
	return names
}
