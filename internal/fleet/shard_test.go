package fleet

import (
	"math"
	"testing"

	"autohet/internal/sim"
)

// shardedConfig is a free-running two-stage pipeline config with a priced
// transfer between the stages.
func shardedConfig(k int, transfers ...float64) Config {
	cfg := freeRunning()
	cfg.Shards = k
	cfg.StageTransferNS = transfers
	return cfg
}

// TestShardedChainRecurrence pins the exact two-stage recurrence with one
// replica per stage and no batching: request i enters stage 0 at
// max(arrival, stage-0 free), completes one fill later, re-arrives at
// stage 1 after the transfer, and resolves with latency measured from its
// original arrival.
func TestShardedChainRecurrence(t *testing.T) {
	f, err := New(shardedConfig(2, 10),
		ReplicaSpec{Pipeline: &sim.PipelineResult{FillNS: 1000, IntervalNS: 100}},
		ReplicaSpec{Pipeline: &sim.PipelineResult{FillNS: 600, IntervalNS: 200}},
	)
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	done := make(chan Outcome, n)
	arrivals := make([]float64, n)
	for i := 0; i < n; i++ {
		arrivals[i] = float64(i) * 50
		if err := f.Submit(NewRequest(arrivals[i], 0, done)); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()

	// Model the chain: stage 0 (fill 1000, interval 100), transfer 10,
	// stage 1 (fill 600, interval 200). Requests traverse in FIFO order.
	free0, free1 := 0.0, 0.0
	want := map[float64]int{}
	for _, a := range arrivals {
		e0 := math.Max(free0, a)
		c0 := e0 + 1000
		free0 = e0 + 100
		hop := c0 + 10
		e1 := math.Max(free1, hop)
		c1 := e1 + 600
		free1 = e1 + 200
		want[c1-a]++
	}
	got := map[float64]int{}
	for i := 0; i < n; i++ {
		out := <-done
		if out.Err != nil {
			t.Fatal(out.Err)
		}
		if out.Replica != "r1" {
			t.Fatalf("resolved by %q, want the stage-1 replica", out.Replica)
		}
		got[out.LatencyNS]++
	}
	for l, c := range want {
		if got[l] != c {
			t.Fatalf("latency %v appears %d times, want %d\ngot: %v", l, got[l], c, got)
		}
	}
	s := f.Snapshot()
	if s.Completed != n {
		t.Fatalf("completed %d of %d", s.Completed, n)
	}
	if s.Replicas[0].Stage != 0 || s.Replicas[1].Stage != 1 {
		t.Fatalf("stage assignment %d,%d", s.Replicas[0].Stage, s.Replicas[1].Stage)
	}
	// Both stages served every request; only the final stage records
	// fleet-level latencies.
	if s.Replicas[0].Served != n || s.Replicas[1].Served != n {
		t.Fatalf("served %d,%d", s.Replicas[0].Served, s.Replicas[1].Served)
	}
}

// Budgets are measured from the original arrival, so a request can expire
// at a later stage even though stage 0 served it comfortably.
func TestShardedBudgetSpansStages(t *testing.T) {
	f, err := New(shardedConfig(2, 0),
		ReplicaSpec{Pipeline: &sim.PipelineResult{FillNS: 1000, IntervalNS: 100}},
		ReplicaSpec{Pipeline: &sim.PipelineResult{FillNS: 1000, IntervalNS: 100}},
	)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan Outcome, 1)
	// Chain completion is 2000; a 1500 budget clears stage 0 (1000) but
	// expires at stage 1.
	if err := f.Submit(NewRequest(0, 1500, done)); err != nil {
		t.Fatal(err)
	}
	f.Close()
	out := <-done
	if out.Err != ErrDeadline {
		t.Fatalf("outcome %+v, want deadline expiry", out)
	}
	s := f.Snapshot()
	if s.Expired != 1 || s.Completed != 0 {
		t.Fatalf("snapshot %+v", s)
	}
}

// Multiple replicas per stage split contiguously, and a sharded workload
// run reports a pipeline bubble fraction inside (0,1).
func TestShardedRunBubbleFraction(t *testing.T) {
	cfg := shardedConfig(2, 5)
	cfg.QueueDepth = 4096
	specs := []ReplicaSpec{
		{Pipeline: &sim.PipelineResult{FillNS: 1000, IntervalNS: 100}},
		{Pipeline: &sim.PipelineResult{FillNS: 1000, IntervalNS: 100}},
		{Pipeline: &sim.PipelineResult{FillNS: 900, IntervalNS: 300}},
		{Pipeline: &sim.PipelineResult{FillNS: 900, IntervalNS: 300}},
	}
	f, err := New(cfg, specs...)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	res, err := Run(f, Workload{ArrivalRate: 5e6, Requests: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 2000 {
		t.Fatalf("completed %d: %v", res.Completed, res)
	}
	if res.BubbleFraction <= 0 || res.BubbleFraction >= 1 {
		t.Fatalf("bubble fraction %v outside (0,1)", res.BubbleFraction)
	}
}

func TestShardValidation(t *testing.T) {
	if _, err := New(shardedConfig(3), ReplicaSpec{Pipeline: fastPipeline()}, ReplicaSpec{Pipeline: fastPipeline()}); err == nil {
		t.Fatal("more stages than replicas must error")
	}
	if _, err := New(shardedConfig(2, 1, 2), ReplicaSpec{Pipeline: fastPipeline()}, ReplicaSpec{Pipeline: fastPipeline()}); err == nil {
		t.Fatal("wrong transfer vector length must error")
	}
	if _, err := New(shardedConfig(2, -1), ReplicaSpec{Pipeline: fastPipeline()}, ReplicaSpec{Pipeline: fastPipeline()}); err == nil {
		t.Fatal("negative transfer must error")
	}
	cfg := freeRunning()
	cfg.Shards = -2
	if _, err := New(cfg, ReplicaSpec{Pipeline: fastPipeline()}); err == nil {
		t.Fatal("negative shards must error")
	}
}
