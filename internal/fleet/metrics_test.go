package fleet

import (
	"math"
	"sort"
	"sync"
	"testing"
)

// TestHistogramQuantileAccuracy checks the log-bucketed quantiles against
// exact nearest-rank values: the geometric-midpoint convention keeps every
// reported quantile within one bucket-growth factor (~7%) of the truth.
func TestHistogramQuantileAccuracy(t *testing.T) {
	var h Histogram
	// Deterministic LCG spanning ~3 decades (1e3 .. 1e6 ns).
	vals := make([]float64, 0, 20000)
	x := uint64(12345)
	for i := 0; i < 20000; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		v := 1e3 * math.Pow(10, 3*float64(x>>11)/float64(1<<53))
		vals = append(vals, v)
		h.Observe(v)
	}
	sort.Float64s(vals)
	for _, p := range []float64{0.50, 0.95, 0.99} {
		exact := vals[int(math.Ceil(p*float64(len(vals))))-1]
		got := h.Quantile(p)
		if rel := math.Abs(got-exact) / exact; rel > histGrowth-1 {
			t.Errorf("q%.2f: histogram %.1f vs exact %.1f (rel err %.3f)", p, got, exact, rel)
		}
	}
	if h.Count() != 20000 {
		t.Fatalf("count %d", h.Count())
	}
	var sum float64
	for _, v := range vals {
		sum += v
	}
	if mean := h.Mean(); math.Abs(mean-sum/20000) > 1e-6*mean {
		t.Errorf("mean %v vs %v", mean, sum/20000)
	}
	if max := h.Max(); max != vals[len(vals)-1] {
		t.Errorf("max %v vs %v", max, vals[len(vals)-1])
	}
}

func TestHistogramEdges(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	h.Observe(-5)         // ignored
	h.Observe(math.NaN()) // ignored
	if h.Count() != 0 {
		t.Fatalf("invalid observations counted: %d", h.Count())
	}
	h.Observe(1) // bucket 0: [0, 64)
	if q := h.Quantile(0.5); q != histMinNS/2 {
		t.Fatalf("bucket-0 quantile %v", q)
	}
	h.Observe(1e15) // beyond the last bucket edge: clamped, max still exact
	if h.Max() != 1e15 {
		t.Fatalf("max %v", h.Max())
	}
	if q := h.Quantile(1); q <= 0 {
		t.Fatalf("q100 %v", q)
	}
	// Quantile clamps p outside (0, 1].
	if h.Quantile(-1) <= 0 || h.Quantile(2) <= 0 {
		t.Fatal("clamped quantiles must be positive on a non-empty histogram")
	}
}

func TestBucketIndexMonotone(t *testing.T) {
	prev := -1
	for ns := 1.0; ns < 1e13; ns *= 1.31 {
		i := bucketIndex(ns)
		if i < prev {
			t.Fatalf("bucketIndex(%g) = %d < previous %d", ns, i, prev)
		}
		if i < 0 || i >= histBuckets {
			t.Fatalf("bucketIndex(%g) = %d out of range", ns, i)
		}
		prev = i
	}
}

// TestHistogramConcurrent checks the CAS float accumulators under parallel
// writers: identical values sum exactly, so the mean must be bit-exact.
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const writers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(1000)
			}
		}()
	}
	wg.Wait()
	if h.Count() != writers*per {
		t.Fatalf("count %d", h.Count())
	}
	if h.Mean() != 1000 {
		t.Fatalf("mean %v", h.Mean())
	}
	if h.Max() != 1000 {
		t.Fatalf("max %v", h.Max())
	}
}
