package fleet

import "errors"

// Request outcomes and admission errors.
var (
	// ErrClosed rejects submissions after Close.
	ErrClosed = errors.New("fleet: closed")
	// ErrShed rejects a submission when every healthy admission queue is
	// full (backpressure).
	ErrShed = errors.New("fleet: shed, all admission queues full")
	// ErrNoReplica means no healthy replica exists (all degraded).
	ErrNoReplica = errors.New("fleet: no healthy replica")
	// ErrDeadline resolves an accepted request whose completion would
	// overshoot its latency budget.
	ErrDeadline = errors.New("fleet: latency budget exceeded")
	// ErrRetries resolves a request bounced off degraded replicas more than
	// Config.MaxRetries times.
	ErrRetries = errors.New("fleet: retries exhausted")
)

// Request is one inference request. Arrival is a virtual timestamp in
// nanoseconds on the workload's clock; the runtime's latency accounting is
// relative to it.
type Request struct {
	// ArrivalNS is the request's virtual arrival time.
	ArrivalNS float64
	// BudgetNS is the per-request latency budget (deadline = arrival +
	// budget); 0 means none. Requests that would miss it are dropped at
	// dispatch without consuming pipeline time.
	BudgetNS float64

	done     chan<- Outcome
	attempts int // re-dispatches so far; owned by whichever goroutine holds the request

	// origNS anchors latency and budget accounting at the request's
	// original arrival; stage hops in a sharded fleet advance ArrivalNS to
	// the handoff time but never origNS (Submit sets origNS = ArrivalNS).
	// stage is the pipeline stage the request currently targets. Both are
	// owned by whichever goroutine holds the request, like attempts.
	origNS float64
	stage  int
}

// NewRequest builds a request whose Outcome will be delivered on done. The
// channel must be buffered (or actively drained): a replica loop delivers
// outcomes synchronously.
func NewRequest(arrivalNS, budgetNS float64, done chan<- Outcome) *Request {
	return &Request{ArrivalNS: arrivalNS, BudgetNS: budgetNS, done: done}
}

// Outcome resolves one accepted request.
type Outcome struct {
	// Err is nil for a served request, ErrDeadline for a dropped one, and
	// ErrRetries/ErrNoReplica when retry routing ran out of replicas.
	Err error
	// LatencyNS is the virtual end-to-end latency (arrival → completion)
	// of a served request.
	LatencyNS float64
	// Replica names the replica that resolved the request.
	Replica string
	// Retries counts re-dispatches off degraded replicas.
	Retries int
}
