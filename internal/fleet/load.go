package fleet

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"autohet/internal/serving"
)

// Workload describes an open-loop Poisson request stream offered to the
// fleet, mirroring serving.Workload so fleet and closed-form serving runs
// are comparable on identical arrival traces.
type Workload struct {
	// ArrivalRate is the mean fleet-wide request rate in requests per
	// virtual second (Poisson process).
	ArrivalRate float64
	// Requests is the number of requests to offer.
	Requests int
	// Seed seeds the arrival process. 0 selects serving.DefaultSeed —
	// the same contract as serving.Workload, so the zero value is a
	// fixed, documented stream.
	Seed int64
	// BudgetNS is the per-request latency budget (0 = none).
	BudgetNS float64
}

// Result aggregates one workload run. Latency percentiles are exact
// (nearest-rank over the completed requests' virtual latencies), unlike
// Snapshot's histogram-approximated ones.
type Result struct {
	Offered    int
	Completed  int
	Shed       int // refused at admission: every healthy queue full (ErrShed)
	Unroutable int // refused at admission: no healthy replica (ErrNoReplica)
	Expired    int // accepted but dropped for missing their budget
	Failed     int // accepted but undeliverable (retries exhausted)
	Retried    int // completed/resolved requests that were re-dispatched

	MeanNS              float64
	P50NS, P95NS, P99NS float64
	MaxNS               float64
	// MakespanNS is the latest virtual completion time.
	MakespanNS float64
	// ThroughputRPS is the achieved completion rate over the makespan.
	ThroughputRPS float64
	// Batches counts executed batches during this run; MeanBatch is the
	// average kept batch size — the currency of the batched-kernel service
	// model (a saturated MaxBatch fleet should hold MeanBatch ≈ MaxBatch).
	Batches   int64
	MeanBatch float64
	// BubbleFraction is the share of replica-time the engines sat idle
	// over the run's makespan — 1 − Σ(replica occupancy)/(N·makespan). In
	// a sharded fleet this is the pipeline bubble: stage imbalance and
	// transfer gaps show up here even when every stage is healthy.
	BubbleFraction float64
}

// Run offers the workload to the fleet and blocks until every request
// resolves. Arrivals are generated exactly as serving.Serve generates them
// (same seed → same trace) and paced on the wall clock by the fleet's
// TimeScale; with a free-running TimeScale the trace still replays
// identically, only without pacing.
// batchTotals sums executed-batch counters across replicas (cumulative
// over the fleet's lifetime; Run takes deltas).
func (f *Fleet) batchTotals() (batches, members int64) {
	for _, r := range f.replicas {
		batches += r.batches.Load()
		members += r.batchSum.Load()
	}
	return
}

// busyTotal sums replica occupancy spans (cumulative; Run takes deltas).
func (f *Fleet) busyTotal() float64 {
	var total float64
	for _, r := range f.replicas {
		total += r.busyNS()
	}
	return total
}

func Run(f *Fleet, w Workload) (*Result, error) {
	if w.ArrivalRate <= 0 {
		return nil, fmt.Errorf("fleet: arrival rate %v", w.ArrivalRate)
	}
	if w.Requests <= 0 {
		return nil, fmt.Errorf("fleet: request count %d", w.Requests)
	}
	seed := w.Seed
	if seed == 0 {
		seed = serving.DefaultSeed
	}
	rng := rand.New(rand.NewSource(seed))
	meanGapNS := 1e9 / w.ArrivalRate

	done := make(chan Outcome, w.Requests)
	res := &Result{Offered: w.Requests}
	batches0, members0 := f.batchTotals()
	busy0 := f.busyTotal()
	f.resetClock()
	// Re-seed the dispatch sampler and round-robin cursor: back-to-back
	// runs on one fleet replay identical dispatch decisions, not a
	// continuation of the previous run's stream.
	f.resetDispatch()
	arrival := 0.0
	accepted := 0
	for i := 0; i < w.Requests; i++ {
		arrival += rng.ExpFloat64() * meanGapNS
		f.pace(arrival)
		err := f.Submit(NewRequest(arrival, w.BudgetNS, done))
		switch err {
		case nil:
			accepted++
		case ErrShed:
			res.Shed++
		case ErrNoReplica:
			res.Unroutable++
		default:
			return nil, err
		}
	}

	latencies := make([]float64, 0, accepted)
	for i := 0; i < accepted; i++ {
		out := <-done
		if out.Retries > 0 {
			res.Retried++
		}
		switch out.Err {
		case nil:
			res.Completed++
			latencies = append(latencies, out.LatencyNS)
		case ErrDeadline:
			res.Expired++
		default:
			res.Failed++
		}
	}
	// Batch accounting deltas, so back-to-back runs on one fleet report
	// only their own batches.
	batches1, members1 := f.batchTotals()
	res.Batches = batches1 - batches0
	if res.Batches > 0 {
		res.MeanBatch = float64(members1-members0) / float64(res.Batches)
	}
	if len(latencies) == 0 {
		return res, nil
	}
	sort.Float64s(latencies)
	var sum float64
	for _, l := range latencies {
		sum += l
	}
	res.MeanNS = sum / float64(len(latencies))
	res.P50NS = percentile(latencies, 0.50)
	res.P95NS = percentile(latencies, 0.95)
	res.P99NS = percentile(latencies, 0.99)
	res.MaxNS = latencies[len(latencies)-1]
	// Upper bound on the last virtual completion (outcomes arrive
	// unordered, so max_i(arrival_i + latency_i) is not reconstructible).
	res.MakespanNS = arrival + res.MaxNS
	if res.MakespanNS > 0 {
		res.ThroughputRPS = float64(res.Completed) / res.MakespanNS * 1e9
		idle := 1 - (f.busyTotal()-busy0)/(float64(len(f.replicas))*res.MakespanNS)
		res.BubbleFraction = math.Min(1, math.Max(0, idle))
	}
	return res, nil
}

// percentile returns the p-quantile of sorted values (nearest-rank),
// matching serving's convention so cross-checks compare like for like.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// String summarizes the run.
func (r *Result) String() string {
	return fmt.Sprintf("%d offered: %d completed, %d shed, %d unroutable, %d expired, %d failed, %d retried; p50 %.4g ns, p99 %.4g ns, %.4g req/s",
		r.Offered, r.Completed, r.Shed, r.Unroutable, r.Expired, r.Failed, r.Retried, r.P50NS, r.P99NS, r.ThroughputRPS)
}
