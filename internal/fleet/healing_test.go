package fleet

import (
	"math"
	"testing"
	"time"

	"autohet/internal/fault"
	"autohet/internal/quant"
	"autohet/internal/sim"
)

// manualSweeps disables the background health loop so tests step repair
// deterministically with Fleet.Sweep.
func manualSweeps() Config {
	cfg := freeRunning()
	cfg.HealthSweepNS = -1
	return cfg
}

// Replicas given the same fault model must fail on independent cells, as
// real chips do: the replica identity is mixed into the model's seed.
func TestReplicaFaultSeedsDecorrelated(t *testing.T) {
	f, err := New(manualSweeps(),
		ReplicaSpec{Name: "a", Pipeline: fastPipeline()},
		ReplicaSpec{Name: "b", Pipeline: fastPipeline()})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	m := &fault.Model{StuckAtZero: 0.05, Seed: 42}
	for _, name := range []string{"a", "b"} {
		if err := f.InjectFault(name, m); err != nil {
			t.Fatal(err)
		}
	}
	models := make([]*fault.Model, 2)
	for i, r := range f.replicas {
		r.faultMu.Lock()
		models[i] = r.faults
		r.faultMu.Unlock()
	}
	if models[0].Seed == models[1].Seed {
		t.Fatalf("replicas share fault seed %d", models[0].Seed)
	}
	// The derived fault maps must actually differ: apply each model to an
	// identical all-ones plane and diff the stuck cells.
	ones := func() []*quant.BitPlane {
		p := &quant.BitPlane{Rows: 40, Cols: 40, Bit: 0, Bits: make([]uint8, 1600)}
		for i := range p.Bits {
			p.Bits[i] = 1
		}
		return []*quant.BitPlane{p}
	}
	pa := models[0].ApplyStuckAt(ones(), 1)[0]
	pb := models[1].ApplyStuckAt(ones(), 1)[0]
	same, faultsA := 0, 0
	for i := range pa.Bits {
		if pa.Bits[i] == 0 {
			faultsA++
			if pb.Bits[i] == 0 {
				same++
			}
		}
	}
	if faultsA == 0 {
		t.Fatal("model injected no faults")
	}
	if same == faultsA {
		t.Fatalf("all %d stuck cells coincide across replicas", faultsA)
	}
	// Pin the mixing function: deterministic and name-sensitive.
	if replicaSeed("a", 42) != replicaSeed("a", 42) {
		t.Fatal("replicaSeed must be deterministic")
	}
	if replicaSeed("a", 42) == replicaSeed("b", 42) {
		t.Fatal("replicaSeed must differ across names")
	}
}

// The queue-aware policies weight by health: a half-healthy replica looks
// twice as loaded, so it keeps serving but takes proportionally less
// traffic instead of cliff-dropping at the threshold.
func TestHealthWeightedDispatch(t *testing.T) {
	mk := func(policy Policy) *Fleet {
		cfg := manualSweeps()
		cfg.Policy = policy
		f, err := newFleet(cfg,
			ReplicaSpec{Name: "a", Pipeline: fastPipeline()},
			ReplicaSpec{Name: "b", Pipeline: fastPipeline()})
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	done := make(chan Outcome, 16)

	jsq := mk(JoinShortestQueue)
	jsq.replicas[1].setHealth(0.4)
	// Empty queues: the sick replica scores 1/0.4 = 2.5 vs 1 — avoid it.
	if got := jsq.pick(0, nil).name; got != "a" {
		t.Fatalf("jsq with sick b picked %q, want a", got)
	}
	// But pile 3 requests onto a (score 4) and the sick replica at 2.5
	// takes traffic again: smooth shift, not a cliff.
	for i := 0; i < 3; i++ {
		stage(t, jsq, 0, NewRequest(0, 0, done))
	}
	if got := jsq.pick(0, nil).name; got != "b" {
		t.Fatalf("jsq with a loaded picked %q, want the half-healthy b", got)
	}

	lo := mk(LeastOutstanding)
	lo.replicas[1].setHealth(0.4)
	lo.replicas[0].outstanding.Add(3)
	if got := lo.pick(0, nil).name; got != "b" {
		t.Fatalf("least-outstanding picked %q, want b (score 2.5 vs 4)", got)
	}

	p2c := mk(PowerOfTwo)
	p2c.replicas[1].setHealth(0.5)
	// Two replicas: p2c always samples both; equal queues, so health
	// decides every draw.
	for i := 0; i < 16; i++ {
		if got := p2c.pick(0, nil).name; got != "a" {
			t.Fatalf("p2c draw %d picked %q, want a", i, got)
		}
	}
}

// The sweep recurrence: inject 2× the degrade threshold with spare capacity
// covering it all and a 50% detection miss rate. The immediate sweep repairs
// half (health 0), then each manual sweep halves the pending residue:
// health 0.5, 0.75, 0.875, ... → recovered without clearing the fault.
func TestSelfHealingSweepRecurrence(t *testing.T) {
	f, err := New(manualSweeps(), ReplicaSpec{
		Name:     "a",
		Pipeline: fastPipeline(),
		Repair:   &RepairSpec{Capacity: 0.05, MissRate: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.InjectFault("a", &fault.Model{StuckAtZero: 0.02, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 0.5, 0.75, 0.875}
	for i, w := range want {
		got := f.Snapshot().Replicas[0].Health
		if math.Abs(got-w) > 1e-12 {
			t.Fatalf("after %d sweeps health = %v, want %v", i, got, w)
		}
		f.Sweep()
	}
	for i := 0; i < 10; i++ {
		f.Sweep()
	}
	s := f.Snapshot().Replicas[0]
	if s.Health < 0.999 || s.Degraded {
		t.Fatalf("health %v after healing, want ≈1", s.Health)
	}
	if s.Repairs < 4 {
		t.Fatalf("repairs counter %d, want every productive sweep counted", s.Repairs)
	}

	// Exhausted capacity: the overflow is masked into a permanent
	// uncovered residue that sweeps cannot clear.
	f2, err := New(manualSweeps(), ReplicaSpec{
		Name:     "a",
		Pipeline: fastPipeline(),
		Repair:   &RepairSpec{Capacity: 0.004},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if err := f2.InjectFault("a", &fault.Model{StuckAtOne: 0.02}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		f2.Sweep()
	}
	if h := f2.Snapshot().Replicas[0].Health; h != 0 {
		t.Fatalf("uncovered 1.6%% ≥ threshold must keep health 0, got %v", h)
	}

	// Partial residue: capacity absorbs all but 0.5× threshold → health
	// settles at 0.5, and the replica keeps taking (reduced) traffic.
	f3, err := New(manualSweeps(), ReplicaSpec{
		Name:     "a",
		Pipeline: fastPipeline(),
		Repair:   &RepairSpec{Capacity: 0.015},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f3.Close()
	if err := f3.InjectFault("a", &fault.Model{StuckAtZero: 0.02}); err != nil {
		t.Fatal(err)
	}
	if h := f3.Snapshot().Replicas[0].Health; math.Abs(h-0.5) > 1e-12 {
		t.Fatalf("health %v, want 0.5 (0.5%% masked residue)", h)
	}
	if f3.pick(0, nil) == nil {
		t.Fatal("half-healthy replica must stay in rotation")
	}

	// Invalid repair specs are rejected at construction.
	if _, err := New(manualSweeps(), ReplicaSpec{
		Pipeline: fastPipeline(), Repair: &RepairSpec{MissRate: 1},
	}); err == nil {
		t.Fatal("miss rate 1 must be rejected")
	}
	if _, err := New(manualSweeps(), ReplicaSpec{
		Pipeline: fastPipeline(), Repair: &RepairSpec{Capacity: -1},
	}); err == nil {
		t.Fatal("negative capacity must be rejected")
	}
}

// The background health loop heals without manual stepping: after a storm,
// health climbs back above 0.9 while the fleet keeps serving.
func TestOnlineHealthLoopHealsUnderTraffic(t *testing.T) {
	cfg := freeRunning()
	cfg.Policy = JoinShortestQueue
	f, err := New(cfg,
		ReplicaSpec{Name: "a", Pipeline: fastPipeline(), Repair: &RepairSpec{Capacity: 0.05, MissRate: 0.3}},
		ReplicaSpec{Name: "b", Pipeline: fastPipeline(), Repair: &RepairSpec{Capacity: 0.05, MissRate: 0.3}})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.InjectFault("b", &fault.Model{StuckAtZero: 0.03, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if h := f.Snapshot().Replicas[1].Health; h > 0.9 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("health loop did not heal b: %v", f.Snapshot().Replicas[1].Health)
		}
		res, err := Run(f, Workload{ArrivalRate: 1e6, Requests: 50, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		if res.Completed+res.Shed+res.Unroutable+res.Expired+res.Failed != res.Offered {
			t.Fatalf("requests lost during healing: %+v", res)
		}
	}
}

// The acceptance scenario: a fleet at ~90% utilization loses a replica to a
// fault storm mid-life, self-repairs over sweeps, and post-repair
// throughput recovers to ≥90% of the pre-fault steady state.
func TestFaultStormThroughputRecovers(t *testing.T) {
	// Paced in real time so queueing dynamics are genuine: free running
	// would deliver every arrival in one wall instant and turn the run into
	// a pure queue-capacity test. The 200 µs service interval dwarfs
	// per-request scheduling overhead (which the race detector inflates to
	// tens of µs), so wall noise cannot masquerade as lost capacity.
	cfg := DefaultConfig()
	cfg.HealthSweepNS = -1
	cfg.Policy = JoinShortestQueue
	cfg.TimeScale = 1
	pr := func() *sim.PipelineResult {
		return &sim.PipelineResult{FillNS: 1e6, IntervalNS: 200_000}
	}
	rs := func() *RepairSpec { return &RepairSpec{Capacity: 0.05, MissRate: 0.5} }
	f, err := New(cfg,
		ReplicaSpec{Name: "a", Pipeline: pr(), Repair: rs()},
		ReplicaSpec{Name: "b", Pipeline: pr(), Repair: rs()},
		ReplicaSpec{Name: "c", Pipeline: pr(), Repair: rs()})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// Aggregate capacity 3×5k rps; offer 13.5k (90%) for ~90 ms per phase.
	w := Workload{ArrivalRate: 13.5e3, Requests: 1200, Seed: 9}

	pre, err := Run(f, w)
	if err != nil {
		t.Fatal(err)
	}
	if pre.Completed < w.Requests*95/100 {
		t.Fatalf("pre-storm steady state unhealthy: %+v", pre)
	}

	// Storm: replica b takes 2× the degrade threshold and goes dark.
	if err := f.InjectFault("b", &fault.Model{StuckAtZero: 0.02, Seed: 11}); err != nil {
		t.Fatal(err)
	}
	if h := f.Snapshot().Replicas[1].Health; h != 0 {
		t.Fatalf("storm must degrade b, health %v", h)
	}
	storm, err := Run(f, w)
	if err != nil {
		t.Fatal(err)
	}
	// Two replicas cannot carry 135% of their capacity: the storm phase
	// visibly sheds or slows.
	if storm.Completed == w.Requests && storm.ThroughputRPS >= 0.95*pre.ThroughputRPS {
		t.Fatalf("storm phase shows no impact: %+v vs pre %+v", storm, pre)
	}

	// Self-heal: each sweep halves the pending residue.
	for i := 0; i < 8; i++ {
		f.Sweep()
	}
	if h := f.Snapshot().Replicas[1].Health; h < 0.99 {
		t.Fatalf("b not healed after 8 sweeps: health %v", h)
	}
	post, err := Run(f, w)
	if err != nil {
		t.Fatal(err)
	}
	if post.ThroughputRPS < 0.9*pre.ThroughputRPS {
		t.Fatalf("post-repair throughput %.4g rps < 90%% of pre-storm %.4g rps",
			post.ThroughputRPS, pre.ThroughputRPS)
	}
	if post.Completed < w.Requests*95/100 {
		t.Fatalf("post-repair run still shedding: %+v", post)
	}
}
