package fleet

import (
	"math"
	"strings"
	"testing"

	"autohet/internal/fault"
	"autohet/internal/sim"
)

// fastPipeline and slowPipeline are fixed service profiles so tests stay
// independent of plan construction. freeRunning disables wall pacing; the
// virtual accounting is exact either way.
func fastPipeline() *sim.PipelineResult { return &sim.PipelineResult{FillNS: 1000, IntervalNS: 100} }
func slowPipeline() *sim.PipelineResult { return &sim.PipelineResult{FillNS: 4000, IntervalNS: 800} }

func freeRunning() Config {
	cfg := DefaultConfig()
	cfg.TimeScale = 1e-9
	return cfg
}

// stage admits a request to a specific replica without going through the
// dispatcher, for deterministic pre-loaded-queue tests on unstarted fleets.
func stage(t *testing.T, f *Fleet, ri int, rq *Request) {
	t.Helper()
	if !f.enqueue(f.replicas[ri], rq) {
		t.Fatalf("staging queue %d full", ri)
	}
}

func TestSingleReplicaRecurrence(t *testing.T) {
	f, err := New(freeRunning(), ReplicaSpec{Pipeline: fastPipeline()})
	if err != nil {
		t.Fatal(err)
	}
	// Arrivals every 50 ns against a 100 ns interval: entry_i =
	// max(arrival_i, entry_{i-1}+100), completion = entry + 1000.
	const n = 50
	done := make(chan Outcome, n)
	for i := 0; i < n; i++ {
		if err := f.Submit(NewRequest(float64(i)*50, 0, done)); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()
	got := map[float64]int{}
	for i := 0; i < n; i++ {
		out := <-done
		if out.Err != nil {
			t.Fatal(out.Err)
		}
		got[out.LatencyNS]++
	}
	// Request i arrives at 50i, enters at 100i (the pipeline is the
	// bottleneck from the first request on), so latency = 1000 + 50i.
	for i := 0; i < n; i++ {
		want := 1000 + 50*float64(i)
		if got[want] != 1 {
			t.Fatalf("latency %v appears %d times, want once", want, got[want])
		}
	}
	s := f.Snapshot()
	if s.Completed != n || s.Shed != 0 || s.Expired != 0 {
		t.Fatalf("snapshot %v", s)
	}
}

func TestBatchingBySize(t *testing.T) {
	cfg := freeRunning()
	cfg.MaxBatch = 8
	f, err := newFleet(cfg, ReplicaSpec{Pipeline: fastPipeline()})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan Outcome, 8)
	for i := 0; i < 8; i++ {
		stage(t, f, 0, NewRequest(0, 0, done))
	}
	f.start()
	f.Close()
	got := map[float64]int{}
	for i := 0; i < 8; i++ {
		out := <-done
		if out.Err != nil {
			t.Fatal(out.Err)
		}
		got[out.LatencyNS]++
	}
	// One batch of 8 entering at 0: member i completes at fill + i·interval.
	for i := 0; i < 8; i++ {
		want := 1000 + 100*float64(i)
		if got[want] != 1 {
			t.Fatalf("latency %v appears %d times, want once", want, got[want])
		}
	}
	s := f.Snapshot().Replicas[0]
	if s.Batches != 1 || s.MeanBatch != 8 {
		t.Fatalf("batches %d mean %v, want one batch of 8", s.Batches, s.MeanBatch)
	}
}

func TestBatchTimeoutAddsLatency(t *testing.T) {
	cfg := freeRunning()
	cfg.MaxBatch = 8
	cfg.BatchTimeoutNS = 5000
	f, err := New(cfg, ReplicaSpec{Pipeline: fastPipeline()})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan Outcome, 1)
	if err := f.Submit(NewRequest(0, 0, done)); err != nil {
		t.Fatal(err)
	}
	f.Close()
	out := <-done
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	// A lone request waits out the batch timeout before entering.
	want := 5000 + 1000.0
	if out.LatencyNS != want {
		t.Fatalf("latency %v, want %v (timeout + fill)", out.LatencyNS, want)
	}
}

func TestBackpressureSheds(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QueueDepth = 2
	cfg.TimeScale = 0.01 // pace so the queue actually fills
	f, err := New(cfg, ReplicaSpec{Pipeline: &sim.PipelineResult{FillNS: 1e6, IntervalNS: 1e6}})
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	done := make(chan Outcome, n)
	accepted, shed := 0, 0
	for i := 0; i < n; i++ {
		switch err := f.Submit(NewRequest(float64(i), 0, done)); err {
		case nil:
			accepted++
		case ErrShed:
			shed++
		default:
			t.Fatal(err)
		}
	}
	f.Close()
	if shed == 0 {
		t.Fatal("burst into a depth-2 queue must shed")
	}
	for i := 0; i < accepted; i++ {
		if out := <-done; out.Err != nil {
			t.Fatal(out.Err)
		}
	}
	s := f.Snapshot()
	if int(s.Shed) != shed || int(s.Completed) != accepted || s.Submitted != n {
		t.Fatalf("accounting: %v (accepted %d, shed %d)", s, accepted, shed)
	}
}

func TestLatencyBudgetExpires(t *testing.T) {
	f, err := newFleet(freeRunning(), ReplicaSpec{Pipeline: fastPipeline()})
	if err != nil {
		t.Fatal(err)
	}
	const n = 10
	done := make(chan Outcome, n)
	for i := 0; i < n; i++ {
		// All arrive at 0 with budget 1249: request i would complete at
		// 100i + 1000, so exactly requests 0..2 fit.
		stage(t, f, 0, NewRequest(0, 1249, done))
	}
	f.start()
	f.Close()
	completed, expired := 0, 0
	for i := 0; i < n; i++ {
		switch out := <-done; out.Err {
		case nil:
			completed++
		case ErrDeadline:
			expired++
		default:
			t.Fatal(out.Err)
		}
	}
	if completed != 3 || expired != n-3 {
		t.Fatalf("completed %d expired %d, want 3 and %d", completed, expired, n-3)
	}
	s := f.Snapshot()
	if s.Expired != int64(n-3) || s.Replicas[0].Expired != int64(n-3) {
		t.Fatalf("expired counters %d / %d", s.Expired, s.Replicas[0].Expired)
	}
}

func TestDegradedReplicaRetriesElsewhere(t *testing.T) {
	f, err := newFleet(freeRunning(),
		ReplicaSpec{Name: "healthy", Pipeline: fastPipeline()},
		ReplicaSpec{Name: "faulty", Pipeline: fastPipeline()})
	if err != nil {
		t.Fatal(err)
	}
	const n = 5
	done := make(chan Outcome, n)
	for i := 0; i < n; i++ {
		stage(t, f, 1, NewRequest(float64(i)*10, 0, done))
	}
	// 5% stuck-at cells is far above the 1% degradation threshold.
	if err := f.InjectFault("faulty", &fault.Model{StuckAtZero: 0.05, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	f.start()
	f.Close()
	for i := 0; i < n; i++ {
		out := <-done
		if out.Err != nil {
			t.Fatal(out.Err)
		}
		if out.Replica != "healthy" || out.Retries != 1 {
			t.Fatalf("outcome %+v, want served by healthy after one retry", out)
		}
	}
	s := f.Snapshot()
	if s.Retried != n || s.Completed != n || s.Failed != 0 {
		t.Fatalf("snapshot %v", s)
	}
}

func TestAllDegradedFailsAfterRetry(t *testing.T) {
	f, err := newFleet(freeRunning(), ReplicaSpec{Name: "only", Pipeline: fastPipeline()})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan Outcome, 1)
	stage(t, f, 0, NewRequest(0, 0, done))
	if err := f.InjectFault("only", &fault.Model{StuckAtOne: 0.02}); err != nil {
		t.Fatal(err)
	}
	f.start()
	f.Close()
	out := <-done
	if out.Err != ErrNoReplica {
		t.Fatalf("outcome err %v, want ErrNoReplica", out.Err)
	}
	if s := f.Snapshot(); s.Failed != 1 {
		t.Fatalf("failed %d, want 1", s.Failed)
	}
	// Submitting against a fully degraded fleet is rejected up front.
	f2, err := New(freeRunning(), ReplicaSpec{Name: "only", Pipeline: fastPipeline(),
		Faults: &fault.Model{StuckAtZero: 0.02}})
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if err := f2.Submit(NewRequest(0, 0, done)); err != ErrNoReplica {
		t.Fatalf("submit to degraded fleet: %v, want ErrNoReplica", err)
	}
}

// Regression: overload rejections (ErrShed, every healthy queue full) and
// outage rejections (ErrNoReplica, nothing healthy) land on separate
// counters, so chaos experiments can tell backpressure from blast radius.
func TestShedVsUnroutableSplit(t *testing.T) {
	// Outage: a fully degraded fleet counts Unroutable, never Shed.
	f, err := New(freeRunning(), ReplicaSpec{Name: "only", Pipeline: fastPipeline(),
		Faults: &fault.Model{StuckAtZero: 0.02}})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan Outcome, 4)
	for i := 0; i < 3; i++ {
		if err := f.Submit(NewRequest(float64(i), 0, done)); err != ErrNoReplica {
			t.Fatalf("submit %d: %v, want ErrNoReplica", i, err)
		}
	}
	f.Close()
	if s := f.Snapshot(); s.Unroutable != 3 || s.Shed != 0 {
		t.Fatalf("outage accounting: %v, want 3 unroutable / 0 shed", s)
	}

	// Overload: a healthy fleet with full queues counts Shed, never
	// Unroutable (the replica loop is not started, so queued work stays).
	cfg := DefaultConfig()
	cfg.QueueDepth = 1
	f2, err := newFleet(cfg, ReplicaSpec{Pipeline: fastPipeline()})
	if err != nil {
		t.Fatal(err)
	}
	shed := 0
	for i := 0; i < 3; i++ {
		switch err := f2.Submit(NewRequest(float64(i), 0, done)); err {
		case nil:
		case ErrShed:
			shed++
		default:
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if shed != 2 {
		t.Fatalf("depth-1 queue took %d sheds from 3 submits, want 2", shed)
	}
	f2.start()
	f2.Close()
	if s := f2.Snapshot(); s.Shed != 2 || s.Unroutable != 0 {
		t.Fatalf("overload accounting: %v, want 2 shed / 0 unroutable", s)
	}
}

func TestInjectFaultBelowThresholdAndRecovery(t *testing.T) {
	f, err := New(freeRunning(), ReplicaSpec{Name: "a", Pipeline: fastPipeline()})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.InjectFault("a", &fault.Model{StuckAtZero: 0.001}); err != nil {
		t.Fatal(err)
	}
	if f.Snapshot().Replicas[0].Degraded {
		t.Fatal("0.1% faults must stay below the 1% degradation threshold")
	}
	if err := f.InjectFault("a", &fault.Model{StuckAtZero: 0.5}); err != nil {
		t.Fatal(err)
	}
	if !f.Snapshot().Replicas[0].Degraded {
		t.Fatal("50% faults must degrade")
	}
	if err := f.InjectFault("a", nil); err != nil {
		t.Fatal(err)
	}
	if f.Snapshot().Replicas[0].Degraded {
		t.Fatal("nil model must recover the replica")
	}
	if err := f.InjectFault("missing", nil); err == nil {
		t.Fatal("unknown replica must error")
	}
	if err := f.InjectFault("a", &fault.Model{StuckAtZero: -1}); err == nil {
		t.Fatal("invalid model must error")
	}
}

func TestPolicyPick(t *testing.T) {
	mk := func(policy Policy) *Fleet {
		cfg := freeRunning()
		cfg.Policy = policy
		f, err := newFleet(cfg,
			ReplicaSpec{Name: "a", Pipeline: fastPipeline()},
			ReplicaSpec{Name: "b", Pipeline: fastPipeline()},
			ReplicaSpec{Name: "c", Pipeline: fastPipeline()})
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	done := make(chan Outcome, 16)

	rr := mk(RoundRobin)
	rr.replicas[1].setHealth(0)
	seen := map[string]int{}
	for i := 0; i < 6; i++ {
		seen[rr.pick(0, nil).name]++
	}
	if seen["a"] != 3 || seen["c"] != 3 || seen["b"] != 0 {
		t.Fatalf("round-robin over healthy replicas: %v", seen)
	}

	jsq := mk(JoinShortestQueue)
	stage(t, jsq, 0, NewRequest(0, 0, done))
	stage(t, jsq, 0, NewRequest(0, 0, done))
	stage(t, jsq, 1, NewRequest(0, 0, done))
	if got := jsq.pick(0, nil).name; got != "c" {
		t.Fatalf("jsq picked %q, want the empty queue c", got)
	}
	if got := jsq.pick(0, jsq.replicas[2]).name; got != "b" {
		t.Fatalf("jsq excluding c picked %q, want b", got)
	}

	lo := mk(LeastOutstanding)
	lo.replicas[0].outstanding.Add(5)
	lo.replicas[2].outstanding.Add(2)
	if got := lo.pick(0, nil).name; got != "b" {
		t.Fatalf("least-outstanding picked %q, want b", got)
	}

	p2c := mk(PowerOfTwo)
	stage(t, p2c, 0, NewRequest(0, 0, done))
	stage(t, p2c, 0, NewRequest(0, 0, done))
	stage(t, p2c, 1, NewRequest(0, 0, done))
	stage(t, p2c, 1, NewRequest(0, 0, done))
	// c is empty; of any sampled pair, p2c never picks the strictly longer
	// queue, so across draws c must win whenever sampled and a/b tie.
	for i := 0; i < 32; i++ {
		r := p2c.pick(0, nil)
		if len(r.queue) > 2 {
			t.Fatalf("p2c picked an impossible queue length %d", len(r.queue))
		}
	}
}

func TestParsePolicy(t *testing.T) {
	for _, p := range Policies {
		got, err := ParsePolicy(string(p))
		if err != nil || got != p {
			t.Fatalf("ParsePolicy(%q) = %q, %v", p, got, err)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Fatal("bogus policy must error")
	}
}

func TestCloseIsIdempotentAndRejects(t *testing.T) {
	f, err := New(freeRunning(), ReplicaSpec{Pipeline: fastPipeline()})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan Outcome, 4)
	for i := 0; i < 4; i++ {
		if err := f.Submit(NewRequest(float64(i), 0, done)); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()
	f.Close()
	if err := f.Submit(NewRequest(0, 0, done)); err != ErrClosed {
		t.Fatalf("submit after close: %v, want ErrClosed", err)
	}
	for i := 0; i < 4; i++ {
		if out := <-done; out.Err != nil {
			t.Fatal(out.Err)
		}
	}
}

func TestValidation(t *testing.T) {
	good := ReplicaSpec{Pipeline: fastPipeline()}
	cases := []struct {
		name  string
		cfg   Config
		specs []ReplicaSpec
	}{
		{"no replicas", DefaultConfig(), nil},
		{"degenerate pipeline", DefaultConfig(), []ReplicaSpec{{Pipeline: &sim.PipelineResult{}}}},
		{"nil pipeline", DefaultConfig(), []ReplicaSpec{{}}},
		{"duplicate names", DefaultConfig(), []ReplicaSpec{{Name: "x", Pipeline: fastPipeline()}, {Name: "x", Pipeline: fastPipeline()}}},
		{"bad policy", Config{Policy: "nope"}, []ReplicaSpec{good}},
		{"negative batch", Config{MaxBatch: -1}, []ReplicaSpec{good}},
		{"negative queue", Config{QueueDepth: -1}, []ReplicaSpec{good}},
		{"negative timescale", Config{TimeScale: -1}, []ReplicaSpec{good}},
		{"negative retries", Config{MaxRetries: -2}, []ReplicaSpec{good}},
		{"bad fault model", DefaultConfig(), []ReplicaSpec{{Pipeline: fastPipeline(), Faults: &fault.Model{StuckAtZero: 2}}}},
	}
	for _, c := range cases {
		if _, err := New(c.cfg, c.specs...); err == nil {
			t.Errorf("%s: must error", c.name)
		}
	}
	if err := (&Fleet{}).Submit(nil); err == nil {
		t.Error("nil request must error")
	}
}

func TestRunValidationAndSummary(t *testing.T) {
	f, err := New(freeRunning(), ReplicaSpec{Pipeline: fastPipeline()})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := Run(f, Workload{ArrivalRate: 0, Requests: 10}); err == nil {
		t.Fatal("zero rate must error")
	}
	if _, err := Run(f, Workload{ArrivalRate: 1e6, Requests: 0}); err == nil {
		t.Fatal("zero requests must error")
	}
	res, err := Run(f, Workload{ArrivalRate: 1e6, Requests: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 100 {
		t.Fatalf("completed %d", res.Completed)
	}
	if !(res.P50NS <= res.P95NS && res.P95NS <= res.P99NS && res.P99NS <= res.MaxNS) {
		t.Fatalf("percentiles out of order: %+v", res)
	}
	if !strings.Contains(res.String(), "100 offered") {
		t.Fatalf("summary %q", res.String())
	}
	if !strings.Contains(f.Snapshot().String(), "fleet[1 replicas]") {
		t.Fatalf("snapshot summary %q", f.Snapshot().String())
	}
}

func TestSeedZeroMatchesServingDefault(t *testing.T) {
	run := func(seed int64) *Result {
		f, err := New(freeRunning(), ReplicaSpec{Pipeline: fastPipeline()})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(f, Workload{ArrivalRate: 5e6, Requests: 300, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		f.Close()
		return res
	}
	zero, def := run(0), run(42)
	if math.Abs(zero.MeanNS-def.MeanNS) > 1e-9 {
		t.Fatalf("Seed 0 mean %v != DefaultSeed mean %v", zero.MeanNS, def.MeanNS)
	}
}
