package fleet

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"autohet/internal/fault"
	"autohet/internal/sim"
)

// TestStressConcurrentFleet hammers one fleet from many producers while
// faults are injected and cleared mid-run, snapshots are read concurrently,
// and Close races the last submissions. Run under -race this exercises every
// cross-goroutine edge; afterwards the books must balance exactly:
// every accepted request resolves exactly once, and the fleet counters
// partition the accepted set into completed/expired/failed.
func TestStressConcurrentFleet(t *testing.T) {
	const (
		producers   = 8
		perProducer = 300
	)
	cfg := Config{
		Policy:         PowerOfTwo,
		MaxBatch:       4,
		BatchTimeoutNS: 50_000,
		QueueDepth:     64,
		MaxRetries:     2,
		TimeScale:      1e-4, // ~0.1 µs wall per 1 ms virtual: real contention, fast test
		Seed:           5,
	}
	specs := []ReplicaSpec{
		{Name: "a", Pipeline: &sim.PipelineResult{FillNS: 2e6, IntervalNS: 1e6}},
		{Name: "b", Pipeline: &sim.PipelineResult{FillNS: 2e6, IntervalNS: 1e6}},
		{Name: "c", Pipeline: &sim.PipelineResult{FillNS: 4e6, IntervalNS: 2e6}},
		{Name: "d", Pipeline: &sim.PipelineResult{FillNS: 4e6, IntervalNS: 2e6}},
	}
	f, err := New(cfg, specs...)
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan Outcome, producers*perProducer)
	var accepted, shed, unroutable, rejected atomic.Int64
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				arrival := float64(i)*1e5 + float64(p)
				budget := 0.0
				if i%8 == 0 {
					budget = 1 // unservable: fill alone exceeds it
				}
				err := f.Submit(NewRequest(arrival, budget, done))
				switch {
				case err == nil:
					accepted.Add(1)
				case errors.Is(err, ErrShed):
					shed.Add(1)
				case errors.Is(err, ErrNoReplica):
					unroutable.Add(1)
				case errors.Is(err, ErrClosed):
					rejected.Add(1)
				default:
					t.Errorf("submit: %v", err)
				}
			}
		}(p)
	}

	// Fault injector: degrade and recover two replicas repeatedly mid-run.
	stop := make(chan struct{})
	var aux sync.WaitGroup
	aux.Add(1)
	go func() {
		defer aux.Done()
		stuck := &fault.Model{StuckAtZero: 0.05, Seed: 1}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			name := specs[i%2].Name
			if err := f.InjectFault(name, stuck); err != nil {
				t.Errorf("inject: %v", err)
			}
			time.Sleep(200 * time.Microsecond)
			if err := f.InjectFault(name, nil); err != nil {
				t.Errorf("recover: %v", err)
			}
		}
	}()
	// Snapshot reader racing the writers.
	aux.Add(1)
	go func() {
		defer aux.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := f.Snapshot()
			if s.Completed < 0 || len(s.Replicas) != len(specs) {
				t.Errorf("implausible snapshot: %+v", s)
			}
			_ = s.String()
			time.Sleep(50 * time.Microsecond)
		}
	}()

	wg.Wait()
	close(stop)
	aux.Wait()
	// Recover everything so drain cannot dead-end on an all-degraded fleet.
	for _, spec := range specs {
		if err := f.InjectFault(spec.Name, nil); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()

	// Every accepted request must have delivered exactly one outcome.
	var completed, expired, failed int64
	for i := int64(0); i < accepted.Load(); i++ {
		select {
		case out := <-done:
			switch {
			case out.Err == nil:
				completed++
				if out.LatencyNS <= 0 {
					t.Errorf("non-positive latency %v", out.LatencyNS)
				}
			case errors.Is(out.Err, ErrDeadline):
				expired++
			default:
				failed++
			}
		default:
			t.Fatalf("only %d of %d outcomes delivered", i, accepted.Load())
		}
	}
	select {
	case out := <-done:
		t.Fatalf("stray outcome %+v beyond the accepted count", out)
	default:
	}

	s := f.Snapshot()
	if total := accepted.Load() + shed.Load() + unroutable.Load(); s.Submitted != total {
		t.Errorf("submitted %d, producers saw %d", s.Submitted, total)
	}
	if s.Shed != shed.Load() {
		t.Errorf("shed counter %d, producers saw %d", s.Shed, shed.Load())
	}
	if s.Unroutable != unroutable.Load() {
		t.Errorf("unroutable counter %d, producers saw %d", s.Unroutable, unroutable.Load())
	}
	if s.Completed != completed || s.Expired != expired || s.Failed != failed {
		t.Errorf("counters (%d,%d,%d) disagree with outcomes (%d,%d,%d)",
			s.Completed, s.Expired, s.Failed, completed, expired, failed)
	}
	if completed+expired+failed != accepted.Load() {
		t.Errorf("outcomes %d do not partition accepted %d",
			completed+expired+failed, accepted.Load())
	}
	var served, rexpired int64
	for _, r := range s.Replicas {
		served += r.Served
		rexpired += r.Expired
		if r.Queued != 0 || r.Outstanding != 0 {
			t.Errorf("replica %s not drained: queued %d outstanding %d",
				r.Name, r.Queued, r.Outstanding)
		}
	}
	if served != s.Completed || rexpired != s.Expired {
		t.Errorf("per-replica served/expired %d/%d vs fleet %d/%d",
			served, rexpired, s.Completed, s.Expired)
	}
	if rejected.Load() > 0 {
		t.Errorf("submissions rejected with ErrClosed before Close: %d", rejected.Load())
	}
	t.Logf("accepted %d, shed %d; completed %d, expired %d, failed %d, retried %d",
		accepted.Load(), shed.Load(), completed, expired, failed, s.Retried)
}

// TestStressCloseRacesSubmit drives producers that keep submitting while a
// consumer drains outcomes and Close runs: post-close submissions must get
// ErrClosed, never panic, and everything accepted must still resolve.
func TestStressCloseRacesSubmit(t *testing.T) {
	cfg := freeRunning()
	cfg.QueueDepth = 1024
	f, err := New(cfg,
		ReplicaSpec{Name: "a", Pipeline: fastPipeline()},
		ReplicaSpec{Name: "b", Pipeline: fastPipeline()})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan Outcome, 1024)
	var accepted, received atomic.Int64
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for range done {
			received.Add(1)
		}
	}()
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; ; i++ {
				err := f.Submit(NewRequest(float64(i), 0, done))
				if errors.Is(err, ErrClosed) {
					return
				}
				if err == nil {
					accepted.Add(1)
				}
			}
		}(p)
	}
	time.Sleep(2 * time.Millisecond)
	f.Close()
	wg.Wait()
	// Close returned, so every accepted request has already sent its
	// outcome; closing done lets the drainer finish counting them.
	close(done)
	<-drained
	if received.Load() != accepted.Load() {
		t.Fatalf("accepted %d but drained %d outcomes", accepted.Load(), received.Load())
	}
	if accepted.Load() == 0 {
		t.Fatal("stress run accepted nothing")
	}
}
