package fleet

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Observability primitives: lock-free counters and a log-bucketed latency
// histogram, both safe for concurrent writers. Snapshots are plain values
// that can be read, printed, and compared without synchronization.

// Histogram is a concurrent latency histogram over geometrically growing
// buckets. Observations are nanoseconds; quantiles are nearest-rank over
// the bucket boundaries, so a reported quantile is within one bucket-growth
// factor (~7%) of the exact value.
type Histogram struct {
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the running sum
	maxBits atomic.Uint64 // float64 bits of the running max
	buckets [histBuckets]atomic.Int64
}

const (
	histMinNS   = 64.0 // lower edge of bucket 1; bucket 0 is [0, histMinNS)
	histGrowth  = 1.07
	histBuckets = 360 // covers up to histMinNS * 1.07^359 ≈ 2.4e12 ns
)

var histLogGrowth = math.Log(histGrowth)

// Observe records one latency sample.
func (h *Histogram) Observe(ns float64) {
	if ns < 0 || math.IsNaN(ns) {
		return
	}
	h.count.Add(1)
	addFloat(&h.sumBits, ns)
	maxFloat(&h.maxBits, ns)
	h.buckets[bucketIndex(ns)].Add(1)
}

func bucketIndex(ns float64) int {
	if ns < histMinNS {
		return 0
	}
	i := 1 + int(math.Log(ns/histMinNS)/histLogGrowth)
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// addFloat atomically adds v to the float64 stored as bits in a.
func addFloat(a *atomic.Uint64, v float64) {
	for {
		old := a.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if a.CompareAndSwap(old, nw) {
			return
		}
	}
}

// maxFloat atomically raises the float64 stored as bits in a to at least v.
func maxFloat(a *atomic.Uint64, v float64) {
	for {
		old := a.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if a.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Mean returns the mean observed latency (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load()) / float64(n)
}

// Max returns the largest observed latency.
func (h *Histogram) Max() float64 { return math.Float64frombits(h.maxBits.Load()) }

// Quantile returns the p-quantile (nearest-rank over buckets); each bucket
// reports its geometric midpoint. p outside (0,1] is clamped.
func (h *Histogram) Quantile(p float64) float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if p <= 0 {
		p = 1e-9
	}
	if p > 1 {
		p = 1
	}
	rank := int64(math.Ceil(p * float64(n)))
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= rank {
			if i == 0 {
				return histMinNS / 2
			}
			lower := histMinNS * math.Pow(histGrowth, float64(i-1))
			return lower * math.Sqrt(histGrowth) // geometric midpoint
		}
	}
	return h.Max()
}

// Counters aggregates fleet-wide request outcomes. All fields are atomic;
// read them through Snapshot for a consistent-enough view.
type Counters struct {
	Submitted atomic.Int64 // admission attempts (including shed ones)
	Completed atomic.Int64 // successfully served
	Shed      atomic.Int64 // refused at admission (queues full or no healthy replica)
	Expired   atomic.Int64 // dropped for missing their latency budget
	Retried   atomic.Int64 // re-dispatches away from a degraded replica
	Failed    atomic.Int64 // accepted but undeliverable (retries exhausted)
}

// ReplicaSnapshot is a point-in-time view of one replica.
type ReplicaSnapshot struct {
	Name string
	// Health is the continuous health score in [0,1]: 1 − uncovered fault
	// rate over Config.DegradeThreshold. Queue-aware dispatch weights by
	// it; Degraded reports the score having reached zero.
	Health   float64
	Degraded bool
	// Repairs counts detection sweeps that found a nonzero pending fault
	// rate (and repaired or masked it).
	Repairs int64
	// Queued is the current admission-queue depth; Outstanding adds
	// requests being executed.
	Queued, Outstanding int
	Served, Batches     int64
	Expired             int64
	// MeanBatch is the average executed batch size.
	MeanBatch float64
	// Latency distribution of requests served by this replica.
	MeanNS, P50NS, P95NS, P99NS, MaxNS float64
	// CapacityRPS is the replica's pipelined service ceiling.
	CapacityRPS float64
	// AreaUM2 is the wrapped plan's silicon area (0 when the replica was
	// built from a bare PipelineResult).
	AreaUM2 float64
}

// Snapshot is a point-in-time view of the whole fleet.
type Snapshot struct {
	Submitted, Completed, Shed, Expired, Retried, Failed int64
	// Fleet-wide latency distribution over completed requests.
	MeanNS, P50NS, P95NS, P99NS, MaxNS float64
	Replicas                           []ReplicaSnapshot
}

// String summarizes the fleet snapshot in one line.
func (s *Snapshot) String() string {
	return fmt.Sprintf("fleet[%d replicas]: %d submitted, %d completed, %d shed, %d expired, %d retried, %d failed; p50 %.4g ns, p99 %.4g ns",
		len(s.Replicas), s.Submitted, s.Completed, s.Shed, s.Expired, s.Retried, s.Failed, s.P50NS, s.P99NS)
}
