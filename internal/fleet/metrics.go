package fleet

import (
	"fmt"

	"autohet/internal/obs"
)

// Observability: the fleet's counters and latency histograms live on the
// shared internal/obs primitives and are published on obs.Default, so
// cmd/fleet's /metrics endpoint exposes them without extra plumbing.
// Snapshots remain plain values that can be read, printed, and compared
// without synchronization.

// Histogram is the shared log-bucketed concurrent latency histogram,
// promoted into internal/obs (this alias keeps the fleet API stable).
type Histogram = obs.Histogram

// Counters aggregates fleet-wide request outcomes. All fields are atomic;
// read them through Snapshot for a consistent-enough view.
type Counters struct {
	Submitted  obs.Counter // admission attempts (including shed ones)
	Completed  obs.Counter // successfully served
	Shed       obs.Counter // refused at admission: every healthy queue full (overload)
	Unroutable obs.Counter // refused at admission: no healthy replica (outage)
	Expired    obs.Counter // dropped for missing their latency budget
	Retried    obs.Counter // re-dispatches away from a degraded replica
	Failed     obs.Counter // accepted but undeliverable (retries exhausted)
}

// registerMetrics publishes the fleet's counters, latency histogram, and
// per-replica queue/health gauges on obs.Default. Registration rebinds by
// name, so tests and benchmarks that build many fleets re-claim the series
// instead of leaking stale ones; the latest fleet wins.
func (f *Fleet) registerMetrics() {
	reg := obs.Default
	const reqHelp = "Fleet request outcomes by disposition."
	for _, oc := range []struct {
		outcome string
		c       *obs.Counter
	}{
		{"submitted", &f.counters.Submitted},
		{"completed", &f.counters.Completed},
		{"shed", &f.counters.Shed},
		{"unroutable", &f.counters.Unroutable},
		{"expired", &f.counters.Expired},
		{"retried", &f.counters.Retried},
		{"failed", &f.counters.Failed},
	} {
		reg.RegisterCounter(fmt.Sprintf("autohet_fleet_requests_total{outcome=%q}", oc.outcome), reqHelp, oc.c)
	}
	reg.RegisterHistogram("autohet_fleet_latency_ns", "Fleet-wide completed-request latency in virtual nanoseconds.", &f.hist)
	for _, r := range f.replicas {
		r := r
		reg.RegisterHistogram(fmt.Sprintf("autohet_fleet_replica_latency_ns{replica=%q}", r.name),
			"Per-replica served-request latency in virtual nanoseconds.", &r.hist)
		reg.GaugeFunc(fmt.Sprintf("autohet_fleet_queue_depth{replica=%q}", r.name),
			"Current admission-queue depth per replica.",
			func() float64 { return float64(len(r.queue)) })
		reg.GaugeFunc(fmt.Sprintf("autohet_fleet_replica_health{replica=%q}", r.name),
			"Replica health score in [0,1] (1 pristine, 0 degraded).",
			r.health)
		if r.breaker != nil {
			b := r.breaker
			reg.GaugeFunc(fmt.Sprintf("autohet_fleet_breaker_state{replica=%q}", r.name),
				"Circuit-breaker state per replica (0 closed, 1 open, 2 half-open).",
				func() float64 { return float64(b.State()) })
		}
	}
}

// ReplicaSnapshot is a point-in-time view of one replica.
type ReplicaSnapshot struct {
	Name string
	// Stage is the pipeline stage the replica serves (0 without sharding).
	Stage int
	// Health is the continuous health score in [0,1]: 1 − uncovered fault
	// rate over Config.DegradeThreshold. Queue-aware dispatch weights by
	// it; Degraded reports the score having reached zero.
	Health   float64
	Degraded bool
	// Repairs counts detection sweeps that found a nonzero pending fault
	// rate (and repaired or masked it).
	Repairs int64
	// Queued is the current admission-queue depth; Outstanding adds
	// requests being executed.
	Queued, Outstanding int
	Served, Batches     int64
	Expired             int64
	// MeanBatch is the average executed batch size.
	MeanBatch float64
	// Latency distribution of requests served by this replica.
	MeanNS, P50NS, P95NS, P99NS, MaxNS float64
	// CapacityRPS is the replica's pipelined service ceiling.
	CapacityRPS float64
	// AreaUM2 is the wrapped plan's silicon area (0 when the replica was
	// built from a bare PipelineResult).
	AreaUM2 float64
}

// Snapshot is a point-in-time view of the whole fleet. Shed counts
// overload rejections (every healthy queue full); Unroutable counts outage
// rejections (no healthy replica at all) — chaos experiments need the two
// apart to tell backpressure from blast radius.
type Snapshot struct {
	Submitted, Completed, Shed, Unroutable, Expired, Retried, Failed int64
	// Fleet-wide latency distribution over completed requests.
	MeanNS, P50NS, P95NS, P99NS, MaxNS float64
	Replicas                           []ReplicaSnapshot
}

// String summarizes the fleet snapshot in one line.
func (s *Snapshot) String() string {
	return fmt.Sprintf("fleet[%d replicas]: %d submitted, %d completed, %d shed, %d unroutable, %d expired, %d retried, %d failed; p50 %.4g ns, p99 %.4g ns",
		len(s.Replicas), s.Submitted, s.Completed, s.Shed, s.Unroutable, s.Expired, s.Retried, s.Failed, s.P50NS, s.P99NS)
}
