package fleet

import (
	"testing"
	"time"

	"autohet/internal/chaos"
	"autohet/internal/sim"
)

func TestCrashBouncesQueueAndRestartHeals(t *testing.T) {
	f, err := newFleet(freeRunning(),
		ReplicaSpec{Name: "a", Pipeline: fastPipeline()},
		ReplicaSpec{Name: "b", Pipeline: fastPipeline()})
	if err != nil {
		t.Fatal(err)
	}
	const n = 4
	done := make(chan Outcome, n)
	for i := 0; i < n; i++ {
		stage(t, f, 0, NewRequest(float64(i), 0, done))
	}
	if err := f.Crash("a"); err != nil {
		t.Fatal(err)
	}
	f.start()
	for i := 0; i < n; i++ {
		out := <-done
		if out.Err != nil {
			t.Fatal(out.Err)
		}
		if out.Replica != "b" || out.Retries != 1 {
			t.Fatalf("outcome %+v, want bounced to b", out)
		}
	}
	// Restart: "a" takes traffic again.
	if err := f.Restart("a"); err != nil {
		t.Fatal(err)
	}
	served := map[string]bool{}
	deadline := time.Now().Add(5 * time.Second)
	for !served["a"] {
		if time.Now().After(deadline) {
			t.Fatal("restarted replica never served")
		}
		if err := f.Submit(NewRequest(0, 0, done)); err != nil {
			t.Fatal(err)
		}
		served[(<-done).Replica] = true
	}
	f.Close()
	if err := f.Crash("nope"); err == nil {
		t.Fatal("crash of unknown replica did not error")
	}
}

func TestSlowAndLinkStretchService(t *testing.T) {
	f, err := newFleet(freeRunning(), ReplicaSpec{Name: "a",
		Pipeline: &sim.PipelineResult{FillNS: 1000, IntervalNS: 100}})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan Outcome, 3)
	stage(t, f, 0, NewRequest(0, 0, done))
	if err := f.SetSlowFactor("a", 3); err != nil {
		t.Fatal(err)
	}
	if err := f.SetLinkPenalty("a", 500); err != nil {
		t.Fatal(err)
	}
	f.start()
	out := <-done
	// fill·3 + link = 3500.
	if out.Err != nil || out.LatencyNS != 3500 {
		t.Fatalf("degraded latency %+v, want 3500 ns", out)
	}
	// Restore: back to the exact healthy recurrence.
	if err := f.SetSlowFactor("a", 1); err != nil {
		t.Fatal(err)
	}
	if err := f.SetLinkPenalty("a", 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Submit(NewRequest(0, 0, done)); err != nil {
		t.Fatal(err)
	}
	out = <-done
	if out.Err != nil || out.LatencyNS <= 0 {
		t.Fatalf("restored outcome %+v", out)
	}
	if err := f.SetSlowFactor("a", 0.5); err == nil {
		t.Fatal("slow factor < 1 accepted")
	}
	f.Close()
}

func TestBreakerOpensOnCrashBounces(t *testing.T) {
	cfg := freeRunning()
	cfg.Breaker = &chaos.BreakerConfig{FailureThreshold: 3, OpenNS: 1e15}
	cfg.MaxRetries = 5
	f, err := New(cfg,
		ReplicaSpec{Name: "a", Pipeline: fastPipeline()},
		ReplicaSpec{Name: "b", Pipeline: fastPipeline()})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Crash("a"); err != nil {
		t.Fatal(err)
	}
	done := make(chan Outcome, 16)
	// Enough traffic that round robin keeps offering "a" work via the
	// fallback path... it cannot: pick filters degraded. Stage via the
	// queue directly instead: requeue-style bounces feed the breaker.
	for i := 0; i < 8; i++ {
		if err := f.Submit(NewRequest(float64(i), 0, done)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		if out := <-done; out.Err != nil {
			t.Fatal(out.Err)
		}
	}
	// All served by b; a's breaker saw no traffic (dispatch filtered it),
	// so it stays closed — now push bounces through it directly.
	ra := f.replicaByName("a")
	for i := 0; i < 3; i++ {
		ra.breaker.Record(f.VirtualNow(), false)
	}
	if st := ra.breaker.State(); st != chaos.BreakerOpen {
		t.Fatalf("breaker state %v after failures, want open", st)
	}
	// Restart heals the crash flag, but the open breaker (cooldown far in
	// the future) keeps dispatch away from "a".
	if err := f.Restart("a"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := f.Submit(NewRequest(0, 0, done)); err != nil {
			t.Fatal(err)
		}
		if out := <-done; out.Replica != "b" {
			t.Fatalf("open breaker leaked traffic to %q", out.Replica)
		}
	}
	f.Close()
}

// Satellite: graceful drain under churn. A chaos schedule crashes and
// restarts replicas while a paced workload is offered and the fleet is
// then drained — Close must terminate and every accepted request must
// resolve with exactly one outcome (served, expired, or failed — never
// lost).
func TestDrainUnderChurnLosesNothing(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy = JoinShortestQueue
	cfg.TimeScale = 0.1
	cfg.MaxBatch = 4
	cfg.BatchTimeoutNS = 1e6
	cfg.HealthSweepNS = -1
	specs := []ReplicaSpec{
		{Name: "r0", Pipeline: &sim.PipelineResult{FillNS: 5e5, IntervalNS: 1e5}},
		{Name: "r1", Pipeline: &sim.PipelineResult{FillNS: 5e5, IntervalNS: 1e5}},
		{Name: "r2", Pipeline: &sim.PipelineResult{FillNS: 5e5, IntervalNS: 1e5}},
		{Name: "r3", Pipeline: &sim.PipelineResult{FillNS: 5e5, IntervalNS: 1e5}},
	}
	f, err := New(cfg, specs...)
	if err != nil {
		t.Fatal(err)
	}
	// Rolling churn across the workload's 1e8 ns virtual span; the tail
	// restarts land while Close is draining.
	sched := chaos.Scripted(
		chaos.Event{AtNS: 1e7, Kind: chaos.Crash, Target: "r0"},
		chaos.Event{AtNS: 2e7, Kind: chaos.Crash, Target: "r1"},
		chaos.Event{AtNS: 3e7, Kind: chaos.Slow, Target: "r2", Value: 5},
		chaos.Event{AtNS: 4e7, Kind: chaos.Restart, Target: "r0"},
		chaos.Event{AtNS: 5e7, Kind: chaos.Crash, Target: "r3"},
		chaos.Event{AtNS: 6e7, Kind: chaos.Restart, Target: "r1"},
		chaos.Event{AtNS: 7e7, Kind: chaos.Slow, Target: "r2", Value: 1},
		chaos.Event{AtNS: 8e7, Kind: chaos.Crash, Target: "r2"},
		chaos.Event{AtNS: 9e7, Kind: chaos.Restart, Target: "r3"},
		chaos.Event{AtNS: 9.5e7, Kind: chaos.Restart, Target: "r2"},
	)
	stop := f.StartChaos(sched)
	defer stop()

	const n = 1000
	done := make(chan Outcome, n)
	accepted, shed, unroutable := 0, 0, 0
	f.resetClock()
	for i := 0; i < n; i++ {
		arrival := float64(i) * 1e5 // 10k req/s against 40k capacity
		f.pace(arrival)
		switch err := f.Submit(NewRequest(arrival, 2e7, done)); err {
		case nil:
			accepted++
		case ErrShed:
			shed++
		case ErrNoReplica:
			unroutable++
		default:
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	// Drain while the chaos tail (crash r2 / restarts) is still firing.
	closed := make(chan struct{})
	go func() {
		f.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(30 * time.Second):
		t.Fatal("drain under churn did not terminate")
	}

	completed, expired, failed := 0, 0, 0
	for i := 0; i < accepted; i++ {
		select {
		case out := <-done:
			switch out.Err {
			case nil:
				completed++
			case ErrDeadline:
				expired++
			default:
				failed++
			}
		default:
			t.Fatalf("lost %d of %d accepted requests", accepted-i, accepted)
		}
	}
	select {
	case out := <-done:
		t.Fatalf("stray outcome %+v", out)
	default:
	}
	if completed+expired+failed != accepted {
		t.Fatalf("outcomes %d+%d+%d do not partition accepted %d",
			completed, expired, failed, accepted)
	}
	if completed == 0 {
		t.Fatal("no requests completed under churn")
	}
	s := f.Snapshot()
	if int(s.Shed) != shed || int(s.Unroutable) != unroutable {
		t.Fatalf("rejection counters (%d,%d) disagree with submit errors (%d,%d)",
			s.Shed, s.Unroutable, shed, unroutable)
	}
	t.Logf("churn drain: %d accepted → %d completed, %d expired, %d failed; %d shed, %d unroutable",
		accepted, completed, expired, failed, shed, unroutable)
}
