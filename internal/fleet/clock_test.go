package fleet

import (
	"math"
	"math/rand"
	"testing"

	"autohet/internal/sim"
)

func clockFleet(t *testing.T, timeScale float64) *Fleet {
	t.Helper()
	cfg := DefaultConfig()
	cfg.TimeScale = timeScale
	f, err := newFleet(cfg, ReplicaSpec{Pipeline: &sim.PipelineResult{FillNS: 1000, IntervalNS: 100}})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// The virtual clock conversion is exact integer math for reciprocal time
// scales: at the free-running 1e-9 scale a 1 ns wall delta is exactly 1e9
// virtual ns, with no float division residue for any delta while the
// product fits 2^53.
func TestVirtualNSExactAtTinyTimeScale(t *testing.T) {
	f := clockFleet(t, 1e-9)
	if f.invScale != 1_000_000_000 {
		t.Fatalf("invScale = %d for TimeScale 1e-9, want 1e9", f.invScale)
	}
	for _, deltaNS := range []int64{0, 1, 2, 3, 1000, 12345, 9_007_199} {
		want := float64(deltaNS * 1_000_000_000)
		if got := f.virtualNS(deltaNS); got != want {
			t.Errorf("virtualNS(%d) = %v, want exactly %v", deltaNS, got, want)
		}
	}
	// Past 2^53 the division fallback holds the error to 1 ulp.
	big := int64(1 << 40)
	got := f.virtualNS(big)
	want := float64(big) / 1e-9
	if got != want {
		t.Errorf("virtualNS(2^40) = %v, want the rounded division %v", got, want)
	}
}

// Real time (TimeScale 1) and experiment scales like 0.2 also take the
// exact path; a non-reciprocal scale falls back to one rounded division.
func TestVirtualNSScales(t *testing.T) {
	f1 := clockFleet(t, 1.0)
	if f1.invScale != 1 {
		t.Fatalf("invScale = %d for TimeScale 1, want 1", f1.invScale)
	}
	for _, d := range []int64{0, 7, 1 << 52} {
		if got := f1.virtualNS(d); got != float64(d) {
			t.Errorf("TimeScale 1: virtualNS(%d) = %v", d, got)
		}
	}
	f5 := clockFleet(t, 0.2)
	if f5.invScale != 5 {
		t.Fatalf("invScale = %d for TimeScale 0.2, want 5", f5.invScale)
	}
	if got := f5.virtualNS(12345); got != float64(12345*5) {
		t.Errorf("TimeScale 0.2: virtualNS(12345) = %v, want 61725", got)
	}
	f3 := clockFleet(t, 0.3)
	if f3.invScale != 0 {
		t.Fatalf("invScale = %d for non-reciprocal TimeScale 0.3, want 0", f3.invScale)
	}
	d := int64(999_999_937)
	got, want := f3.virtualNS(d), float64(d)/0.3
	ulp := math.Nextafter(want, math.Inf(1)) - want
	if math.Abs(got-want) > ulp {
		t.Errorf("TimeScale 0.3: virtualNS(%d) = %v, want %v ± 1 ulp", d, got, want)
	}
}

// resetDispatch returns the sampler to the seed and the round-robin cursor
// to zero — the state Run resets so replays are deterministic.
func TestResetDispatch(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 123
	f, err := newFleet(cfg, ReplicaSpec{Pipeline: &sim.PipelineResult{FillNS: 1000, IntervalNS: 100}})
	if err != nil {
		t.Fatal(err)
	}
	f.rng.Int63()
	f.rng.Int63()
	f.rr[0].Add(17)
	f.resetDispatch()
	fresh := rand.New(rand.NewSource(123))
	for i := 0; i < 5; i++ {
		if got, want := f.rng.Int63(), fresh.Int63(); got != want {
			t.Fatalf("draw %d after reset: %d, want %d", i, got, want)
		}
	}
	if f.rr[0].Load() != 0 {
		t.Fatalf("rrNext = %d after reset", f.rr[0].Load())
	}
}

// Back-to-back identical workloads on one fleet produce identical results:
// the regression the dispatch reset exists for. The request count is chosen
// indivisible by the replica count so a carried-over round-robin cursor
// would shift every assignment on the second run.
func TestRunReplayDeterministic(t *testing.T) {
	shapes := []sim.PipelineResult{
		{FillNS: 1000, IntervalNS: 100},
		{FillNS: 2500, IntervalNS: 160},
		{FillNS: 600, IntervalNS: 80},
	}
	specs := make([]ReplicaSpec, 6)
	for i := range specs {
		pr := shapes[i%len(shapes)]
		specs[i] = ReplicaSpec{Pipeline: &pr}
	}
	cfg := DefaultConfig()
	cfg.TimeScale = 1e-9
	cfg.QueueDepth = 2000
	f, err := New(cfg, specs...)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w := Workload{ArrivalRate: 2e7, Requests: 1001, Seed: 7}
	a, err := Run(f, w)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(f, w)
	if err != nil {
		t.Fatal(err)
	}
	if a.Completed != b.Completed || a.Shed != b.Shed || a.Unroutable != b.Unroutable || a.Expired != b.Expired {
		t.Fatalf("replay diverged: %+v vs %+v", a, b)
	}
	pairs := []struct {
		name string
		x, y float64
	}{
		{"mean", a.MeanNS, b.MeanNS},
		{"p50", a.P50NS, b.P50NS},
		{"p95", a.P95NS, b.P95NS},
		{"p99", a.P99NS, b.P99NS},
		{"max", a.MaxNS, b.MaxNS},
	}
	for _, p := range pairs {
		if p.x != p.y {
			t.Errorf("replay %s diverged: %v vs %v", p.name, p.x, p.y)
		}
	}
}
