package fleet

import (
	"math"
	"testing"

	"autohet/internal/accel"
	"autohet/internal/dnn"
	"autohet/internal/hw"
	"autohet/internal/serving"
	"autohet/internal/sim"
	"autohet/internal/xbar"
)

// A single-replica fleet with no batching applies exactly serving.Serve's
// pipelined recurrence (entry = max(arrival, previous entry + interval),
// completion = entry + fill), and fleet.Run replays serving's arrival trace
// for the same seed. The distributions must therefore agree to floating-point
// noise, independent of goroutine scheduling — the accounting is virtual-time.
func crossCheck(t *testing.T, pr *sim.PipelineResult, load float64, requests int, seed int64) {
	t.Helper()
	w := serving.Workload{ArrivalRate: load * 1e9 / pr.IntervalNS, Requests: requests, Seed: seed}
	want, err := serving.Serve(pr, w)
	if err != nil {
		t.Fatal(err)
	}

	cfg := DefaultConfig()
	cfg.TimeScale = 1e-9 // free-running: pacing off, accounting unchanged
	// The free-running submitter can outpace the replica loop, so the
	// admission queue must hold the whole trace to rule out shedding.
	cfg.QueueDepth = requests
	f, err := New(cfg, ReplicaSpec{Name: "solo", Pipeline: pr})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(f, Workload{ArrivalRate: w.ArrivalRate, Requests: requests, Seed: seed})
	f.Close()
	if err != nil {
		t.Fatal(err)
	}

	if got.Completed != want.Completed || got.Shed != 0 {
		t.Fatalf("fleet completed %d (shed %d), serving completed %d",
			got.Completed, got.Shed, want.Completed)
	}
	pairs := []struct {
		name      string
		got, want float64
	}{
		{"mean", got.MeanNS, want.MeanNS},
		{"p50", got.P50NS, want.P50NS},
		{"p95", got.P95NS, want.P95NS},
		{"p99", got.P99NS, want.P99NS},
		{"max", got.MaxNS, want.MaxNS},
	}
	for _, p := range pairs {
		if math.Abs(p.got-p.want) > 1e-6*math.Max(1, p.want) {
			t.Errorf("load %.0f%% %s: fleet %.6f ns, serving %.6f ns", 100*load, p.name, p.got, p.want)
		}
	}
}

func TestCrossCheckSyntheticPipeline(t *testing.T) {
	pr := &sim.PipelineResult{FillNS: 1000, IntervalNS: 100}
	for _, load := range []float64{0.3, 0.8, 1.5} {
		crossCheck(t, pr, load, 3000, 9)
	}
}

func TestCrossCheckMappedPlan(t *testing.T) {
	p, err := accel.BuildPlan(hw.DefaultConfig(), dnn.AlexNet(),
		accel.Homogeneous(8, xbar.Square(128)), true)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := sim.SimulateBatch(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, load := range []float64{0.8, 1.2} {
		crossCheck(t, pr, load, 1500, 11)
	}
}
