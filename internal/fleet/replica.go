package fleet

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"autohet/internal/accel"
	"autohet/internal/chaos"
	"autohet/internal/fault"
	"autohet/internal/sim"
)

// RepairSpec configures a replica's online self-repair: how much stuck-cell
// rate its provisioned spares can absorb and how lossy each detection sweep
// is. The zero value detects perfectly but can repair nothing — faults are
// masked (bounded error) and the health score carries the full residual.
type RepairSpec struct {
	// Capacity is the total stuck-at cell rate the replica's provisioned
	// spares can absorb before masking takes over — typically
	// repair.Provision.MaxCellRate of the design behind the replica.
	Capacity float64
	// MissRate is the probability one detection sweep misses a pending
	// fault. Sweeps are independent, so the undetected residue decays
	// geometrically as the online loop runs.
	MissRate float64
}

// Validate rejects malformed repair specs.
func (s *RepairSpec) Validate() error {
	if s == nil {
		return nil
	}
	if s.Capacity < 0 {
		return fmt.Errorf("fleet: negative repair capacity %v", s.Capacity)
	}
	if s.MissRate < 0 || s.MissRate >= 1 {
		return fmt.Errorf("fleet: repair miss rate %v outside [0,1)", s.MissRate)
	}
	return nil
}

// BatchService prices a replica's service directly from measured
// batched-kernel costs: a formed batch of B kept requests occupies the
// engine for BaseNS + B·PerInputNS, with member i completing at
// entry + BaseNS + (i+1)·PerInputNS. Derive the two terms from a measured
// pipeline with sim.PipelineResult.BatchCost(), or from a wall-clock
// batched-kernel benchmark. The completion arithmetic is the pipelined
// recurrence with fill = BaseNS + PerInputNS; what changes is occupancy —
// a batched kernel holds the engine for the whole BaseNS + B·PerInputNS,
// whereas a pipeline accepts its next batch while the last one drains.
type BatchService struct {
	// BaseNS is the per-batch cost paid once regardless of batch size
	// (weight-plane walk, dispatch, scratch setup).
	BaseNS float64
	// PerInputNS is the marginal cost of one more batch member.
	PerInputNS float64
}

// Validate rejects malformed batch service models.
func (s *BatchService) Validate() error {
	if s == nil {
		return nil
	}
	if s.PerInputNS <= 0 {
		return fmt.Errorf("fleet: batch service per-input cost %v ns", s.PerInputNS)
	}
	if s.BaseNS < 0 {
		return fmt.Errorf("fleet: batch service base cost %v ns", s.BaseNS)
	}
	return nil
}

// ReplicaSpec describes one accelerator instance in the fleet.
type ReplicaSpec struct {
	// Name identifies the replica in snapshots and fault injection
	// (default "r<index>").
	Name string
	// Pipeline supplies the replica's service timing (fill latency and
	// steady-state initiation interval). Required unless Service is set.
	Pipeline *sim.PipelineResult
	// Service, when set, prices batches from batched-kernel costs instead
	// of the pipelined recurrence: member i of a batch completes at
	// entry + BaseNS + (i+1)·PerInputNS and the engine stays busy for
	// BaseNS + kept·PerInputNS. Overrides Pipeline timing when both are
	// given.
	Service *BatchService
	// Plan optionally records the mapped design behind the pipeline so
	// snapshots can report silicon area.
	Plan *accel.Plan
	// Faults optionally injects device non-idealities from the start; the
	// stuck-at cell rate left uncovered after repair, measured against
	// Config.DegradeThreshold, sets the replica's health score.
	Faults *fault.Model
	// Repair enables online self-repair: detection sweeps (run by the
	// fleet's health loop or Fleet.Sweep) move pending faults onto spare
	// capacity until it runs out. Nil means faults land uncovered at once —
	// the legacy binary degrade behavior.
	Repair *RepairSpec
}

// healthState is the replica's fault ledger, owned by faultMu. All fields
// are stuck-at cell rates (fractions of cells).
type healthState struct {
	// pending is the injected fault rate not yet seen by a detection sweep.
	pending float64
	// uncovered is the detected rate that exhausted spare capacity and was
	// masked instead of repaired — the bounded-error residue driving the
	// health score.
	uncovered float64
	// spareLeft is the remaining spare capacity.
	spareLeft float64
}

// replica runs one accelerator's batching loop. nextFree (the virtual time
// at which the pipeline accepts its next input) is owned by the loop
// goroutine; everything else shared is atomic or under faultMu.
type replica struct {
	name  string
	pr    *sim.PipelineResult
	plan  *accel.Plan
	queue chan *Request
	// stage is the pipeline stage this replica serves (always 0 without
	// sharding); set once at fleet construction.
	stage int

	// Service timing resolved from the spec: member i of a batch completes
	// at entry + fillNS + i·intervalNS, and the engine is next free at
	// entry + occBaseNS + kept·intervalNS. Pipeline-derived replicas have
	// occBaseNS = 0 (the pipeline overlaps drain with the next batch);
	// BatchService replicas have fillNS = BaseNS + PerInputNS,
	// intervalNS = PerInputNS, occBaseNS = BaseNS.
	fillNS, intervalNS, occBaseNS float64

	// outstanding counts queued + executing requests (the
	// least-outstanding policy's signal).
	outstanding atomic.Int64
	// healthBits holds the health score in [0,1] as float64 bits: 1 is
	// pristine, 0 is degraded (bounced by the batching loop). Dispatch
	// policies weight queue scores by it so traffic shifts smoothly away
	// from sick replicas.
	healthBits atomic.Uint64
	// crashed fail-stops the replica (chaos injection): degraded() while
	// set, so the batching loop bounces its queue to retry routing.
	crashed atomic.Bool
	// slowBits / linkBits hold chaos service degradations as float64 bits:
	// a fail-slow multiplier on fill and interval (0 bits = factor 1) and
	// an added per-batch link transfer cost in ns. Written by the chaos
	// driver, read by execute.
	slowBits atomic.Uint64
	linkBits atomic.Uint64
	// breaker is the per-replica circuit breaker (nil unless
	// Config.Breaker is set). Dispatch filters on CanRoute, commits with
	// OnRoute, and finish/reroute feed Record.
	breaker *chaos.Breaker
	faultMu sync.Mutex
	faults  *fault.Model
	repair  *RepairSpec
	hs      healthState

	nextFree float64 // virtual ns; loop-owned
	clockGen uint64  // fleet clock generation nextFree belongs to; loop-owned

	served   atomic.Int64
	batches  atomic.Int64
	batchSum atomic.Int64
	// busyBits accumulates the replica's virtual occupancy span in ns
	// (float64 bits; single writer — the loop goroutine). Run turns the
	// fleet-wide total into the pipeline bubble fraction.
	busyBits atomic.Uint64
	expired  atomic.Int64
	rerouted atomic.Int64
	repairs  atomic.Int64 // sweeps that repaired or masked a nonzero rate
	hist     Histogram
}

func newReplica(index int, spec ReplicaSpec, cfg *Config) (*replica, error) {
	name := spec.Name
	if name == "" {
		name = fmt.Sprintf("r%d", index)
	}
	if spec.Service == nil && (spec.Pipeline == nil || spec.Pipeline.IntervalNS <= 0 || spec.Pipeline.FillNS <= 0) {
		return nil, fmt.Errorf("fleet: replica %q has a degenerate pipeline", name)
	}
	if err := spec.Service.Validate(); err != nil {
		return nil, fmt.Errorf("fleet: replica %q: %w", name, err)
	}
	if err := spec.Repair.Validate(); err != nil {
		return nil, fmt.Errorf("fleet: replica %q: %w", name, err)
	}
	r := &replica{
		name:  name,
		pr:    spec.Pipeline,
		plan:  spec.Plan,
		queue: make(chan *Request, cfg.QueueDepth),
	}
	if s := spec.Service; s != nil {
		r.fillNS = s.BaseNS + s.PerInputNS
		r.intervalNS = s.PerInputNS
		r.occBaseNS = s.BaseNS
	} else {
		r.fillNS = spec.Pipeline.FillNS
		r.intervalNS = spec.Pipeline.IntervalNS
	}
	if spec.Repair != nil {
		rs := *spec.Repair
		r.repair = &rs
	}
	if cfg.Breaker != nil {
		r.breaker = chaos.NewBreaker(*cfg.Breaker)
	}
	r.setHealth(1)
	if err := r.injectFault(spec.Faults, cfg.DegradeThreshold); err != nil {
		return nil, err
	}
	return r, nil
}

func (r *replica) health() float64 { return math.Float64frombits(r.healthBits.Load()) }
func (r *replica) degraded() bool  { return r.crashed.Load() || r.health() <= 0 }
func (r *replica) setHealth(h float64) {
	r.healthBits.Store(math.Float64bits(h))
}

// slowFactor returns the chaos fail-slow service multiplier (1 when none is
// installed: the zero bit pattern decodes specially so untouched replicas
// never pay a float multiply identity risk).
func (r *replica) slowFactor() float64 {
	bits := r.slowBits.Load()
	if bits == 0 {
		return 1
	}
	return math.Float64frombits(bits)
}

// linkNS returns the chaos degraded-link transfer cost added to each batch.
func (r *replica) linkNS() float64 {
	bits := r.linkBits.Load()
	if bits == 0 {
		return 0
	}
	return math.Float64frombits(bits)
}

// queueScore is the health-weighted admission-queue depth the JSQ and P2C
// policies minimize: a replica at half health looks twice as long, so
// traffic shifts smoothly away instead of cliff-dropping at a threshold.
func (r *replica) queueScore() float64 { return float64(len(r.queue)+1) / r.health() }

// loadScore is queueScore over outstanding work (least-outstanding policy).
func (r *replica) loadScore() float64 {
	return float64(r.outstanding.Load()+1) / r.health()
}

// replicaSeed mixes the replica's identity into a fault seed (FNV-1a over
// the name) so identical fault models injected fleet-wide still produce
// independent per-chip fault maps, as real silicon does.
func replicaSeed(name string, seed int64) int64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return seed ^ int64(h)
}

// injectFault installs (or clears, with nil) the fault model, resets the
// fault ledger to the new model's stuck-at rate against a full spare budget,
// and runs one immediate detection sweep. Without a RepairSpec that sweep
// detects everything and repairs nothing, reproducing the legacy binary
// degrade semantics; with one, the first sweep repairs what it detects and
// the online loop keeps sweeping the missed residue.
func (r *replica) injectFault(m *fault.Model, threshold float64) error {
	if err := m.Validate(); err != nil {
		return err
	}
	r.faultMu.Lock()
	defer r.faultMu.Unlock()
	if m == nil {
		r.faults = nil
	} else {
		mm := *m
		mm.Seed = replicaSeed(r.name, m.Seed)
		r.faults = &mm
	}
	r.hs = healthState{pending: m.CellFaultRate()}
	if r.repair != nil {
		r.hs.spareLeft = r.repair.Capacity
	}
	r.sweepLocked(threshold)
	return nil
}

// sweep runs one online detection/repair pass: detect (1−miss) of the
// pending faults, repair them from the remaining spare capacity, mask the
// overflow into the uncovered residue, and refresh the health score.
func (r *replica) sweep(threshold float64) {
	r.faultMu.Lock()
	defer r.faultMu.Unlock()
	r.sweepLocked(threshold)
}

func (r *replica) sweepLocked(threshold float64) {
	detected := r.hs.pending
	if r.repair != nil {
		detected *= 1 - r.repair.MissRate
	}
	if detected > 0 {
		r.hs.pending -= detected
		repaired := math.Min(detected, r.hs.spareLeft)
		r.hs.spareLeft -= repaired
		r.hs.uncovered += detected - repaired
		r.repairs.Add(1)
	}
	h := 1 - (r.hs.pending+r.hs.uncovered)/threshold
	if h < 0 {
		h = 0
	}
	if h > 1 {
		h = 1
	}
	r.setHealth(h)
}

// loop collects batches from the admission queue and executes them until
// the fleet shuts down. A batch closes at MaxBatch requests or
// BatchTimeoutNS after its first one; if the replica's health has reached
// zero, the whole batch is bounced back to the dispatcher for retry
// elsewhere.
func (r *replica) loop(f *Fleet) {
	defer f.loops.Done()
	for {
		var first *Request
		select {
		case first = <-r.queue:
		case <-f.quit:
			return
		}
		batch := make([]*Request, 1, f.cfg.MaxBatch)
		batch[0] = first
		timedOut := false
		if f.cfg.MaxBatch > 1 {
			timer := time.NewTimer(f.scaled(f.cfg.BatchTimeoutNS))
		collect:
			for len(batch) < f.cfg.MaxBatch {
				// Drain already-queued requests before consulting the
				// timer, so an expired timer never truncates a batch
				// whose members are ready (and free-running fleets,
				// whose scaled timeout is ~0, still batch).
				select {
				case rq := <-r.queue:
					batch = append(batch, rq)
					continue
				default:
				}
				select {
				case rq := <-r.queue:
					batch = append(batch, rq)
				case <-timer.C:
					timedOut = true
					break collect
				}
			}
			timer.Stop()
		}
		if r.degraded() {
			for _, rq := range batch {
				f.reroute(r, rq)
			}
			continue
		}
		r.execute(f, batch, timedOut)
	}
}

// execute prices the batch on the pipelined accelerator in virtual time:
// the batch enters at max(pipeline free, latest member arrival, first
// arrival + batch timeout when the timeout closed it); member i completes
// one fill plus i initiation intervals later. Requests whose completion
// would overshoot their latency budget are dropped without consuming
// pipeline time. The loop then sleeps until the batch's virtual occupancy
// has passed on the wall clock so the next batch forms under realistic
// pacing.
func (r *replica) execute(f *Fleet, batch []*Request, timedOut bool) {
	if g := f.clockGen.Load(); g != r.clockGen {
		r.clockGen = g
		r.nextFree = 0
	}
	// Chaos service degradation: a fail-slow factor stretches fill and
	// interval, a degraded link adds transfer cost to the batch fill. With
	// no chaos installed (factor 1, link 0) both expressions are exact
	// identities, so legacy accounting stays bit-for-bit.
	fill := r.fillNS*r.slowFactor() + r.linkNS()
	interval := r.intervalNS * r.slowFactor()
	entry := r.nextFree
	for _, rq := range batch {
		if rq.ArrivalNS > entry {
			entry = rq.ArrivalNS
		}
	}
	if timedOut {
		if t := batch[0].ArrivalNS + f.cfg.BatchTimeoutNS; t > entry {
			entry = t
		}
	}
	kept := batch[:0]
	for _, rq := range batch {
		completion := entry + fill + float64(len(kept))*interval
		if rq.BudgetNS > 0 && completion-rq.origNS > rq.BudgetNS {
			r.expired.Add(1)
			f.finish(r, rq, Outcome{Err: ErrDeadline, Replica: r.name, Retries: rq.attempts})
			continue
		}
		kept = append(kept, rq)
	}
	if len(kept) == 0 {
		return
	}
	// Pipeline-derived replicas overlap drain with the next batch
	// (occBaseNS = 0, preserving the legacy arithmetic bit for bit); batch
	// service replicas hold the engine for the whole batched kernel.
	r.nextFree = entry + r.occBaseNS*r.slowFactor() + float64(len(kept))*interval
	r.addBusy(r.nextFree - entry)
	r.batches.Add(1)
	r.batchSum.Add(int64(len(kept)))
	f.pace(r.nextFree)
	lastStage := r.stage == f.cfg.Shards-1
	for i, rq := range kept {
		completion := entry + fill + float64(i)*interval
		r.served.Add(1)
		if lastStage {
			latency := completion - rq.origNS
			r.hist.Observe(latency)
			f.finish(r, rq, Outcome{LatencyNS: latency, Replica: r.name, Retries: rq.attempts})
			continue
		}
		// Hand off to the next pipeline stage: the request re-arrives
		// there after the priced activation transfer.
		rq.ArrivalNS = completion + f.transferNS(rq.stage)
		rq.stage++
		f.advance(r, rq)
	}
}

// addBusy accumulates occupancy; only the loop goroutine writes, so a
// load+store pair is a safe atomic read-modify-write here.
func (r *replica) addBusy(d float64) {
	r.busyBits.Store(math.Float64bits(math.Float64frombits(r.busyBits.Load()) + d))
}

func (r *replica) busyNS() float64 { return math.Float64frombits(r.busyBits.Load()) }

func (r *replica) snapshot() ReplicaSnapshot {
	s := ReplicaSnapshot{
		Name:        r.name,
		Stage:       r.stage,
		Health:      r.health(),
		Degraded:    r.degraded(),
		Queued:      len(r.queue),
		Outstanding: int(r.outstanding.Load()),
		Served:      r.served.Load(),
		Batches:     r.batches.Load(),
		Expired:     r.expired.Load(),
		Repairs:     r.repairs.Load(),
		MeanNS:      r.hist.Mean(),
		P50NS:       r.hist.Quantile(0.50),
		P95NS:       r.hist.Quantile(0.95),
		P99NS:       r.hist.Quantile(0.99),
		MaxNS:       r.hist.Max(),
		CapacityRPS: 1e9 / r.intervalNS,
	}
	if b := r.batches.Load(); b > 0 {
		s.MeanBatch = float64(r.batchSum.Load()) / float64(b)
	}
	if r.plan != nil {
		s.AreaUM2 = r.plan.Area()
	}
	return s
}
