package fleet

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"autohet/internal/accel"
	"autohet/internal/fault"
	"autohet/internal/sim"
)

// ReplicaSpec describes one accelerator instance in the fleet.
type ReplicaSpec struct {
	// Name identifies the replica in snapshots and fault injection
	// (default "r<index>").
	Name string
	// Pipeline supplies the replica's service timing (fill latency and
	// steady-state initiation interval). Required.
	Pipeline *sim.PipelineResult
	// Plan optionally records the mapped design behind the pipeline so
	// snapshots can report silicon area.
	Plan *accel.Plan
	// Faults optionally injects device non-idealities from the start; a
	// stuck-at cell rate at or above Config.DegradeThreshold marks the
	// replica degraded.
	Faults *fault.Model
}

// replica runs one accelerator's batching loop. nextFree (the virtual time
// at which the pipeline accepts its next input) is owned by the loop
// goroutine; everything else shared is atomic.
type replica struct {
	name  string
	pr    *sim.PipelineResult
	plan  *accel.Plan
	queue chan *Request

	// outstanding counts queued + executing requests (the
	// least-outstanding policy's signal).
	outstanding atomic.Int64
	degraded    atomic.Bool
	faultMu     sync.Mutex
	faults      *fault.Model

	nextFree float64 // virtual ns; loop-owned

	served   atomic.Int64
	batches  atomic.Int64
	batchSum atomic.Int64
	expired  atomic.Int64
	rerouted atomic.Int64
	hist     Histogram
}

func newReplica(index int, spec ReplicaSpec, cfg *Config) (*replica, error) {
	name := spec.Name
	if name == "" {
		name = fmt.Sprintf("r%d", index)
	}
	if spec.Pipeline == nil || spec.Pipeline.IntervalNS <= 0 || spec.Pipeline.FillNS <= 0 {
		return nil, fmt.Errorf("fleet: replica %q has a degenerate pipeline", name)
	}
	r := &replica{
		name:  name,
		pr:    spec.Pipeline,
		plan:  spec.Plan,
		queue: make(chan *Request, cfg.QueueDepth),
	}
	if err := r.injectFault(spec.Faults, cfg.DegradeThreshold); err != nil {
		return nil, err
	}
	return r, nil
}

// injectFault installs (or clears, with nil) the fault model and re-derives
// the degraded flag from its stuck-at cell rate.
func (r *replica) injectFault(m *fault.Model, threshold float64) error {
	if err := m.Validate(); err != nil {
		return err
	}
	r.faultMu.Lock()
	r.faults = m
	r.faultMu.Unlock()
	r.degraded.Store(m.CellFaultRate() >= threshold)
	return nil
}

// loop collects batches from the admission queue and executes them until
// the fleet shuts down. A batch closes at MaxBatch requests or
// BatchTimeoutNS after its first one; if the replica was marked degraded,
// the whole batch is bounced back to the dispatcher for retry elsewhere.
func (r *replica) loop(f *Fleet) {
	defer f.loops.Done()
	for {
		var first *Request
		select {
		case first = <-r.queue:
		case <-f.quit:
			return
		}
		batch := make([]*Request, 1, f.cfg.MaxBatch)
		batch[0] = first
		timedOut := false
		if f.cfg.MaxBatch > 1 {
			timer := time.NewTimer(f.scaled(f.cfg.BatchTimeoutNS))
		collect:
			for len(batch) < f.cfg.MaxBatch {
				// Drain already-queued requests before consulting the
				// timer, so an expired timer never truncates a batch
				// whose members are ready (and free-running fleets,
				// whose scaled timeout is ~0, still batch).
				select {
				case rq := <-r.queue:
					batch = append(batch, rq)
					continue
				default:
				}
				select {
				case rq := <-r.queue:
					batch = append(batch, rq)
				case <-timer.C:
					timedOut = true
					break collect
				}
			}
			timer.Stop()
		}
		if r.degraded.Load() {
			for _, rq := range batch {
				f.reroute(r, rq)
			}
			continue
		}
		r.execute(f, batch, timedOut)
	}
}

// execute prices the batch on the pipelined accelerator in virtual time:
// the batch enters at max(pipeline free, latest member arrival, first
// arrival + batch timeout when the timeout closed it); member i completes
// one fill plus i initiation intervals later. Requests whose completion
// would overshoot their latency budget are dropped without consuming
// pipeline time. The loop then sleeps until the batch's virtual occupancy
// has passed on the wall clock so the next batch forms under realistic
// pacing.
func (r *replica) execute(f *Fleet, batch []*Request, timedOut bool) {
	entry := r.nextFree
	for _, rq := range batch {
		if rq.ArrivalNS > entry {
			entry = rq.ArrivalNS
		}
	}
	if timedOut {
		if t := batch[0].ArrivalNS + f.cfg.BatchTimeoutNS; t > entry {
			entry = t
		}
	}
	kept := batch[:0]
	for _, rq := range batch {
		completion := entry + r.pr.FillNS + float64(len(kept))*r.pr.IntervalNS
		if rq.BudgetNS > 0 && completion-rq.ArrivalNS > rq.BudgetNS {
			r.expired.Add(1)
			f.finish(r, rq, Outcome{Err: ErrDeadline, Replica: r.name, Retries: rq.attempts})
			continue
		}
		kept = append(kept, rq)
	}
	if len(kept) == 0 {
		return
	}
	r.nextFree = entry + float64(len(kept))*r.pr.IntervalNS
	r.batches.Add(1)
	r.batchSum.Add(int64(len(kept)))
	f.pace(r.nextFree)
	for i, rq := range kept {
		latency := entry + r.pr.FillNS + float64(i)*r.pr.IntervalNS - rq.ArrivalNS
		r.served.Add(1)
		r.hist.Observe(latency)
		f.finish(r, rq, Outcome{LatencyNS: latency, Replica: r.name, Retries: rq.attempts})
	}
}

func (r *replica) snapshot() ReplicaSnapshot {
	s := ReplicaSnapshot{
		Name:        r.name,
		Degraded:    r.degraded.Load(),
		Queued:      len(r.queue),
		Outstanding: int(r.outstanding.Load()),
		Served:      r.served.Load(),
		Batches:     r.batches.Load(),
		Expired:     r.expired.Load(),
		MeanNS:      r.hist.Mean(),
		P50NS:       r.hist.Quantile(0.50),
		P95NS:       r.hist.Quantile(0.95),
		P99NS:       r.hist.Quantile(0.99),
		MaxNS:       r.hist.Max(),
		CapacityRPS: 1e9 / r.pr.IntervalNS,
	}
	if b := r.batches.Load(); b > 0 {
		s.MeanBatch = float64(r.batchSum.Load()) / float64(b)
	}
	if r.plan != nil {
		s.AreaUM2 = r.plan.Area()
	}
	return s
}
