package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func newTestNet(seed int64) *Network {
	rng := rand.New(rand.NewSource(seed))
	return NewNetwork(rng, 3,
		LayerSpec{Out: 8, Act: ReLU},
		LayerSpec{Out: 8, Act: Tanh},
		LayerSpec{Out: 2, Act: Linear},
	)
}

func TestNetworkShapes(t *testing.T) {
	n := newTestNet(1)
	if n.InputSize() != 3 || n.OutputSize() != 2 {
		t.Fatalf("shapes in=%d out=%d", n.InputSize(), n.OutputSize())
	}
	want := 3*8 + 8 + 8*8 + 8 + 8*2 + 2
	if n.NumParams() != want {
		t.Fatalf("NumParams = %d, want %d", n.NumParams(), want)
	}
}

func TestForwardDeterministic(t *testing.T) {
	n := newTestNet(2)
	x := []float64{0.1, -0.2, 0.3}
	a := append([]float64(nil), n.Forward(x)...)
	b := n.Forward(x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Forward not deterministic")
		}
	}
}

func TestForwardPanicsOnWrongInput(t *testing.T) {
	n := newTestNet(3)
	defer func() {
		if recover() == nil {
			t.Fatal("Forward with wrong input size did not panic")
		}
	}()
	n.Forward([]float64{1})
}

func TestCloneIndependence(t *testing.T) {
	n := newTestNet(4)
	c := n.Clone()
	x := []float64{1, 2, 3}
	before := append([]float64(nil), c.Forward(x)...)
	n.Layers[0].W.Fill(0)
	after := c.Forward(x)
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("Clone shares weights with original")
		}
	}
}

func TestSoftUpdateConverges(t *testing.T) {
	a := newTestNet(5)
	b := newTestNet(6)
	for i := 0; i < 2000; i++ {
		a.SoftUpdate(b, 0.01)
	}
	for li := range a.Layers {
		if !a.Layers[li].W.Equal(b.Layers[li].W, 1e-6) {
			t.Fatalf("layer %d weights did not converge", li)
		}
	}
}

func TestCopyFrom(t *testing.T) {
	a := newTestNet(7)
	b := newTestNet(8)
	a.CopyFrom(b)
	x := []float64{0.5, -0.5, 0.25}
	av := append([]float64(nil), a.Forward(x)...)
	bv := b.Forward(x)
	for i := range av {
		if math.Abs(av[i]-bv[i]) > 1e-12 {
			t.Fatal("CopyFrom did not copy parameters")
		}
	}
}

// Gradient check: compare analytic Backward gradients against central finite
// differences for every parameter of a small network.
func TestBackwardGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := NewNetwork(rng, 2,
		LayerSpec{Out: 4, Act: Tanh},
		LayerSpec{Out: 3, Act: Sigmoid},
		LayerSpec{Out: 1, Act: Linear},
	)
	x := []float64{0.3, -0.7}
	loss := func() float64 {
		out := n.Forward(x)
		return 0.5 * out[0] * out[0]
	}
	// Analytic gradients.
	n.ZeroGrad()
	out := n.Forward(x)
	n.Backward([]float64{out[0]})
	const eps = 1e-6
	for li, l := range n.Layers {
		for i := range l.W.Data {
			orig := l.W.Data[i]
			l.W.Data[i] = orig + eps
			up := loss()
			l.W.Data[i] = orig - eps
			down := loss()
			l.W.Data[i] = orig
			numeric := (up - down) / (2 * eps)
			if math.Abs(numeric-l.GW.Data[i]) > 1e-5 {
				t.Fatalf("layer %d W[%d]: analytic %v numeric %v", li, i, l.GW.Data[i], numeric)
			}
		}
		for i := range l.B {
			orig := l.B[i]
			l.B[i] = orig + eps
			up := loss()
			l.B[i] = orig - eps
			down := loss()
			l.B[i] = orig
			numeric := (up - down) / (2 * eps)
			if math.Abs(numeric-l.GB[i]) > 1e-5 {
				t.Fatalf("layer %d B[%d]: analytic %v numeric %v", li, i, l.GB[i], numeric)
			}
		}
	}
}

// Gradient check for the input gradient returned by Backward.
func TestBackwardInputGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	n := NewNetwork(rng, 3, LayerSpec{Out: 5, Act: ReLU}, LayerSpec{Out: 1, Act: Linear})
	x := []float64{0.4, 0.1, -0.9}
	n.ZeroGrad()
	out := n.Forward(x)
	din := append([]float64(nil), n.Backward([]float64{out[0]})...)
	const eps = 1e-6
	for i := range x {
		xi := x[i]
		x[i] = xi + eps
		up := n.Forward(x)[0]
		upLoss := 0.5 * up * up
		x[i] = xi - eps
		dn := n.Forward(x)[0]
		dnLoss := 0.5 * dn * dn
		x[i] = xi
		numeric := (upLoss - dnLoss) / (2 * eps)
		if math.Abs(numeric-din[i]) > 1e-5 {
			t.Fatalf("input grad[%d]: analytic %v numeric %v", i, din[i], numeric)
		}
	}
}

func TestTrainingReducesLossOnRegression(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := NewNetwork(rng, 1, LayerSpec{Out: 16, Act: Tanh}, LayerSpec{Out: 1, Act: Linear})
	opt := NewAdam(n, 1e-2)
	target := func(x float64) float64 { return math.Sin(3 * x) }
	lossAt := func() float64 {
		var total float64
		for i := 0; i < 50; i++ {
			x := -1 + 2*float64(i)/49
			out := n.Forward([]float64{x})
			d := out[0] - target(x)
			total += d * d
		}
		return total / 50
	}
	before := lossAt()
	for epoch := 0; epoch < 400; epoch++ {
		n.ZeroGrad()
		for i := 0; i < 16; i++ {
			x := rng.Float64()*2 - 1
			out := n.Forward([]float64{x})
			n.Backward([]float64{out[0] - target(x)})
		}
		opt.Step(n, 16)
	}
	after := lossAt()
	if after >= before/4 {
		t.Fatalf("training did not reduce loss: before %v after %v", before, after)
	}
}

func TestAdamStepCountsAndZeroesGrads(t *testing.T) {
	n := newTestNet(12)
	opt := NewAdam(n, 1e-3)
	n.ZeroGrad()
	out := n.Forward([]float64{1, 1, 1})
	n.Backward([]float64{out[0], out[1]})
	if n.GradMaxAbs() == 0 {
		t.Fatal("expected nonzero gradients before step")
	}
	opt.Step(n, 1)
	if opt.Steps() != 1 {
		t.Fatalf("Steps = %d", opt.Steps())
	}
	if n.GradMaxAbs() != 0 {
		t.Fatal("Step must zero gradients")
	}
}

func TestAdamPanicsOnBadBatch(t *testing.T) {
	n := newTestNet(13)
	opt := NewAdam(n, 1e-3)
	defer func() {
		if recover() == nil {
			t.Fatal("Step with batchSize 0 did not panic")
		}
	}()
	opt.Step(n, 0)
}

func TestActivationDerivativeMatchesNumeric(t *testing.T) {
	for _, act := range []Activation{Linear, ReLU, Tanh, Sigmoid} {
		for _, x := range []float64{-2, -0.5, 0.3, 1.7} {
			if act == ReLU && x == 0 {
				continue
			}
			const eps = 1e-6
			numeric := (act.Apply(x+eps) - act.Apply(x-eps)) / (2 * eps)
			analytic := act.Derivative(act.Apply(x))
			if math.Abs(numeric-analytic) > 1e-5 {
				t.Errorf("%v'(%v): analytic %v numeric %v", act, x, analytic, numeric)
			}
		}
	}
}

func TestActivationStrings(t *testing.T) {
	names := map[Activation]string{Linear: "linear", ReLU: "relu", Tanh: "tanh", Sigmoid: "sigmoid"}
	for a, want := range names {
		if a.String() != want {
			t.Errorf("%d.String() = %q, want %q", a, a.String(), want)
		}
	}
	if Activation(99).String() != "unknown" {
		t.Error("unknown activation name wrong")
	}
}

// Property: sigmoid output is always in (0,1) and tanh in (-1,1).
func TestActivationRanges(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		s := Sigmoid.Apply(x)
		th := Tanh.Apply(x)
		return s >= 0 && s <= 1 && th >= -1 && th <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewNetworkPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []func(){
		func() { NewNetwork(rng, 0, LayerSpec{Out: 1}) },
		func() { NewNetwork(rng, 1) },
		func() { NewNetwork(rng, 1, LayerSpec{Out: 0}) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}
