package nn

import (
	"math/rand"
	"testing"
)

func benchNet(seed int64) *Network {
	rng := rand.New(rand.NewSource(seed))
	return NewNetwork(rng, 11,
		LayerSpec{Out: 64, Act: ReLU},
		LayerSpec{Out: 64, Act: ReLU},
		LayerSpec{Out: 1, Act: Linear},
	)
}

func BenchmarkForward(b *testing.B) {
	n := benchNet(1)
	x := make([]float64, 11)
	for i := range x {
		x[i] = 0.1 * float64(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Forward(x)
	}
}

func BenchmarkForwardBackward(b *testing.B) {
	n := benchNet(2)
	x := make([]float64, 11)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := n.Forward(x)
		n.Backward([]float64{out[0]})
	}
}

func BenchmarkAdamStep(b *testing.B) {
	n := benchNet(3)
	opt := NewAdam(n, 1e-3)
	x := make([]float64, 11)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := n.Forward(x)
		n.Backward([]float64{out[0]})
		opt.Step(n, 1)
	}
}
