package nn

import (
	"math"

	"autohet/internal/mat"
)

// Adam implements the Adam optimizer (Kingma & Ba, 2015) over one Network's
// parameters. DDPG conventionally trains both actor and critic with Adam.
type Adam struct {
	LR      float64 // learning rate (step size)
	Beta1   float64 // first-moment decay, default 0.9
	Beta2   float64 // second-moment decay, default 0.999
	Epsilon float64 // numerical floor, default 1e-8

	t  int // step counter
	mW []*mat.Matrix
	vW []*mat.Matrix
	mB [][]float64
	vB [][]float64
}

// NewAdam returns an Adam optimizer bound to net's parameter shapes with the
// conventional default hyperparameters.
func NewAdam(net *Network, lr float64) *Adam {
	a := &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Epsilon: 1e-8}
	for _, l := range net.Layers {
		a.mW = append(a.mW, mat.New(l.W.Rows, l.W.Cols))
		a.vW = append(a.vW, mat.New(l.W.Rows, l.W.Cols))
		a.mB = append(a.mB, make([]float64, len(l.B)))
		a.vB = append(a.vB, make([]float64, len(l.B)))
	}
	return a
}

// Step applies one Adam update using the gradients accumulated in net
// (scaled by 1/batchSize) and then clears them. batchSize must be ≥ 1.
func (a *Adam) Step(net *Network, batchSize int) {
	if batchSize < 1 {
		panic("nn: Adam.Step batchSize must be >= 1")
	}
	if len(a.mW) != len(net.Layers) {
		panic("nn: Adam bound to a different network shape")
	}
	a.t++
	scale := 1 / float64(batchSize)
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for li, l := range net.Layers {
		mw, vw := a.mW[li], a.vW[li]
		for i, g := range l.GW.Data {
			g *= scale
			mw.Data[i] = a.Beta1*mw.Data[i] + (1-a.Beta1)*g
			vw.Data[i] = a.Beta2*vw.Data[i] + (1-a.Beta2)*g*g
			mh := mw.Data[i] / bc1
			vh := vw.Data[i] / bc2
			l.W.Data[i] -= a.LR * mh / (math.Sqrt(vh) + a.Epsilon)
		}
		mb, vb := a.mB[li], a.vB[li]
		for i, g := range l.GB {
			g *= scale
			mb[i] = a.Beta1*mb[i] + (1-a.Beta1)*g
			vb[i] = a.Beta2*vb[i] + (1-a.Beta2)*g*g
			mh := mb[i] / bc1
			vh := vb[i] / bc2
			l.B[i] -= a.LR * mh / (math.Sqrt(vh) + a.Epsilon)
		}
	}
	net.ZeroGrad()
}

// Steps reports how many updates have been applied.
func (a *Adam) Steps() int { return a.t }
