package nn

import (
	"encoding/gob"
	"fmt"
	"io"

	"autohet/internal/mat"
)

// Serialization via encoding/gob so trained DDPG policies can be stored and
// reused (the paper trains once offline and applies the strategy many
// times; persisting the agent makes that workflow concrete).

type layerDTO struct {
	Rows, Cols int
	W          []float64
	B          []float64
	Act        Activation
}

type networkDTO struct {
	Inputs int
	Layers []layerDTO
}

// Save writes the network's parameters (not gradients) to w.
func (n *Network) Save(w io.Writer) error {
	dto := networkDTO{Inputs: n.InputSize()}
	for _, l := range n.Layers {
		dto.Layers = append(dto.Layers, layerDTO{
			Rows: l.W.Rows,
			Cols: l.W.Cols,
			W:    append([]float64(nil), l.W.Data...),
			B:    append([]float64(nil), l.B...),
			Act:  l.Act,
		})
	}
	return gob.NewEncoder(w).Encode(dto)
}

// LoadNetwork reads a network saved by Save.
func LoadNetwork(r io.Reader) (*Network, error) {
	var dto networkDTO
	if err := gob.NewDecoder(r).Decode(&dto); err != nil {
		return nil, fmt.Errorf("nn: decoding network: %w", err)
	}
	if dto.Inputs <= 0 || len(dto.Layers) == 0 {
		return nil, fmt.Errorf("nn: corrupt network: inputs=%d layers=%d", dto.Inputs, len(dto.Layers))
	}
	n := &Network{}
	in := dto.Inputs
	for i, ld := range dto.Layers {
		if ld.Rows <= 0 || ld.Cols != in || len(ld.W) != ld.Rows*ld.Cols || len(ld.B) != ld.Rows {
			return nil, fmt.Errorf("nn: corrupt layer %d: %dx%d W=%d B=%d after %d inputs",
				i, ld.Rows, ld.Cols, len(ld.W), len(ld.B), in)
		}
		l := &Dense{
			W:   mat.FromSlice(ld.Rows, ld.Cols, append([]float64(nil), ld.W...)),
			B:   append([]float64(nil), ld.B...),
			Act: ld.Act,
			GW:  mat.New(ld.Rows, ld.Cols),
			GB:  make([]float64, ld.Rows),
		}
		n.Layers = append(n.Layers, l)
		in = ld.Rows
	}
	n.allocScratch(dto.Inputs)
	return n, nil
}
