package nn

import (
	"fmt"
	"math/rand"

	"autohet/internal/mat"
)

// Dense is one fully-connected layer: out = act(W·in + b).
type Dense struct {
	W   *mat.Matrix // out × in
	B   []float64   // out
	Act Activation

	// Gradient accumulators, filled by Network.Backward and consumed by the
	// optimizer. Same shapes as W and B.
	GW *mat.Matrix
	GB []float64
}

// newDense allocates a layer with Xavier-initialized weights.
func newDense(rng *rand.Rand, in, out int, act Activation) *Dense {
	w := mat.New(out, in)
	w.XavierInit(rng, in, out)
	return &Dense{
		W:   w,
		B:   make([]float64, out),
		Act: act,
		GW:  mat.New(out, in),
		GB:  make([]float64, out),
	}
}

// Network is a feed-forward stack of dense layers. It caches per-layer
// activations so a Backward call can follow a Forward call; a Network is
// therefore not safe for concurrent use (clone one per goroutine instead).
type Network struct {
	Layers []*Dense

	// acts[0] is the input; acts[i+1] is the output of layer i.
	acts [][]float64
	// scratch buffers for backprop deltas, one per layer boundary.
	deltas [][]float64
}

// LayerSpec describes one layer of an MLP for NewNetwork.
type LayerSpec struct {
	Out int
	Act Activation
}

// NewNetwork builds an MLP with the given input width and layer specs.
// Weights are Xavier-initialized from rng.
func NewNetwork(rng *rand.Rand, inputs int, specs ...LayerSpec) *Network {
	if inputs <= 0 {
		panic("nn: network needs a positive input width")
	}
	if len(specs) == 0 {
		panic("nn: network needs at least one layer")
	}
	n := &Network{}
	in := inputs
	for _, s := range specs {
		if s.Out <= 0 {
			panic(fmt.Sprintf("nn: layer width %d invalid", s.Out))
		}
		n.Layers = append(n.Layers, newDense(rng, in, s.Out, s.Act))
		in = s.Out
	}
	n.allocScratch(inputs)
	return n
}

func (n *Network) allocScratch(inputs int) {
	n.acts = make([][]float64, len(n.Layers)+1)
	n.deltas = make([][]float64, len(n.Layers)+1)
	n.acts[0] = make([]float64, inputs)
	n.deltas[0] = make([]float64, inputs)
	for i, l := range n.Layers {
		n.acts[i+1] = make([]float64, len(l.B))
		n.deltas[i+1] = make([]float64, len(l.B))
	}
}

// InputSize returns the expected input width.
func (n *Network) InputSize() int { return n.Layers[0].W.Cols }

// OutputSize returns the output width.
func (n *Network) OutputSize() int { return len(n.Layers[len(n.Layers)-1].B) }

// Forward runs x through the network and returns the output activation. The
// returned slice is owned by the network and overwritten by the next call.
func (n *Network) Forward(x []float64) []float64 {
	if len(x) != n.InputSize() {
		panic(fmt.Sprintf("nn: input size %d, want %d", len(x), n.InputSize()))
	}
	copy(n.acts[0], x)
	for i, l := range n.Layers {
		out := n.acts[i+1]
		l.W.MulVec(out, n.acts[i])
		for j := range out {
			out[j] = l.Act.Apply(out[j] + l.B[j])
		}
	}
	return n.acts[len(n.Layers)]
}

// Backward accumulates parameter gradients for the most recent Forward call,
// given dLoss/dOutput, and returns dLoss/dInput (owned by the network).
// Gradients add into GW/GB so minibatch updates can accumulate across
// samples; call ZeroGrad before a new batch.
func (n *Network) Backward(dOut []float64) []float64 {
	last := len(n.Layers)
	if len(dOut) != len(n.acts[last]) {
		panic(fmt.Sprintf("nn: dOut size %d, want %d", len(dOut), len(n.acts[last])))
	}
	copy(n.deltas[last], dOut)
	for i := last - 1; i >= 0; i-- {
		l := n.Layers[i]
		delta := n.deltas[i+1]
		out := n.acts[i+1]
		// Fold the activation derivative into the delta.
		for j := range delta {
			delta[j] *= l.Act.Derivative(out[j])
		}
		l.GW.AddOuterScaled(delta, n.acts[i], 1)
		for j := range delta {
			l.GB[j] += delta[j]
		}
		l.W.MulVecT(n.deltas[i], delta)
	}
	return n.deltas[0]
}

// ZeroGrad clears all accumulated gradients.
func (n *Network) ZeroGrad() {
	for _, l := range n.Layers {
		l.GW.Zero()
		for i := range l.GB {
			l.GB[i] = 0
		}
	}
}

// Clone returns a deep copy of the network (weights, not gradients).
func (n *Network) Clone() *Network {
	out := &Network{}
	for _, l := range n.Layers {
		c := &Dense{
			W:   l.W.Clone(),
			B:   append([]float64(nil), l.B...),
			Act: l.Act,
			GW:  mat.New(l.W.Rows, l.W.Cols),
			GB:  make([]float64, len(l.B)),
		}
		out.Layers = append(out.Layers, c)
	}
	out.allocScratch(n.InputSize())
	return out
}

// SoftUpdate moves this network's parameters toward src:
// θ ← (1−tau)·θ + tau·θ_src. It implements DDPG target-network tracking.
func (n *Network) SoftUpdate(src *Network, tau float64) {
	if len(n.Layers) != len(src.Layers) {
		panic("nn: SoftUpdate layer count mismatch")
	}
	for i, l := range n.Layers {
		s := src.Layers[i]
		l.W.Lerp(s.W, tau)
		for j := range l.B {
			l.B[j] = (1-tau)*l.B[j] + tau*s.B[j]
		}
	}
}

// CopyFrom hard-copies parameters from src (tau = 1 soft update).
func (n *Network) CopyFrom(src *Network) { n.SoftUpdate(src, 1) }

// NumParams returns the total number of trainable scalars.
func (n *Network) NumParams() int {
	total := 0
	for _, l := range n.Layers {
		total += l.W.Rows*l.W.Cols + len(l.B)
	}
	return total
}

// GradMaxAbs returns the largest absolute accumulated gradient, useful for
// diagnosing divergence in tests.
func (n *Network) GradMaxAbs() float64 {
	var max float64
	for _, l := range n.Layers {
		if g := l.GW.MaxAbs(); g > max {
			max = g
		}
		for _, g := range l.GB {
			if g < 0 {
				g = -g
			}
			if g > max {
				max = g
			}
		}
	}
	return max
}
