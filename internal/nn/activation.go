// Package nn is a small fully-connected neural-network library built for the
// DDPG agent in package rl. It supports per-sample forward/backward passes,
// the Adam optimizer, and the soft (Polyak) parameter updates DDPG's target
// networks require. It deliberately implements only what the paper's RL
// search needs — dense layers with ReLU/tanh/sigmoid/linear activations.
package nn

import "math"

// Activation names an element-wise nonlinearity applied after a dense layer.
type Activation int

// Supported activations. Linear is the identity and is used on critic
// outputs; Sigmoid bounds actor outputs to (0,1) so they can be decoded into
// a crossbar-candidate index; Tanh is the conventional DDPG hidden/actor
// choice; ReLU is used in hidden layers.
const (
	Linear Activation = iota
	ReLU
	Tanh
	Sigmoid
)

// String returns the activation's conventional lowercase name.
func (a Activation) String() string {
	switch a {
	case Linear:
		return "linear"
	case ReLU:
		return "relu"
	case Tanh:
		return "tanh"
	case Sigmoid:
		return "sigmoid"
	default:
		return "unknown"
	}
}

// Apply computes the activation of x.
func (a Activation) Apply(x float64) float64 {
	switch a {
	case Linear:
		return x
	case ReLU:
		if x < 0 {
			return 0
		}
		return x
	case Tanh:
		return math.Tanh(x)
	case Sigmoid:
		return 1 / (1 + math.Exp(-x))
	default:
		panic("nn: unknown activation")
	}
}

// Derivative computes dσ/dx given the activation output y = σ(x). Expressing
// the derivative in terms of the output avoids caching pre-activations.
func (a Activation) Derivative(y float64) float64 {
	switch a {
	case Linear:
		return 1
	case ReLU:
		if y > 0 {
			return 1
		}
		return 0
	case Tanh:
		return 1 - y*y
	case Sigmoid:
		return y * (1 - y)
	default:
		panic("nn: unknown activation")
	}
}
