package nn

import (
	"bytes"
	"strings"
	"testing"
)

func TestNetworkSaveLoadRoundTrip(t *testing.T) {
	n := newTestNet(31)
	var buf bytes.Buffer
	if err := n.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadNetwork(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.InputSize() != n.InputSize() || back.OutputSize() != n.OutputSize() {
		t.Fatalf("shapes %d→%d vs %d→%d", back.InputSize(), back.OutputSize(), n.InputSize(), n.OutputSize())
	}
	x := []float64{0.3, -0.1, 0.9}
	a := append([]float64(nil), n.Forward(x)...)
	b := back.Forward(x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("output %d: %v vs %v", i, a[i], b[i])
		}
	}
	// Loaded network is trainable (gradients allocated).
	back.ZeroGrad()
	back.Backward([]float64{1, 1})
	if back.GradMaxAbs() == 0 {
		t.Fatal("loaded network has no gradient buffers")
	}
}

func TestLoadNetworkRejectsGarbage(t *testing.T) {
	if _, err := LoadNetwork(strings.NewReader("not gob")); err == nil {
		t.Fatal("garbage must not decode")
	}
	if _, err := LoadNetwork(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input must not decode")
	}
}

func TestSaveLoadIndependence(t *testing.T) {
	n := newTestNet(32)
	var buf bytes.Buffer
	if err := n.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadNetwork(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Mutating the original must not affect the loaded copy.
	x := []float64{1, 2, 3}
	before := append([]float64(nil), back.Forward(x)...)
	n.Layers[0].W.Fill(0)
	after := back.Forward(x)
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("loaded network shares memory with original")
		}
	}
}
