package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroed(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("New(3,4) = %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("element %d = %v, want 0", i, v)
		}
	}
}

func TestNewPanicsOnBadDims(t *testing.T) {
	for _, dims := range [][2]int{{0, 1}, {1, 0}, {-1, 2}, {2, -3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", dims[0], dims[1])
				}
			}()
			New(dims[0], dims[1])
		}()
	}
}

func TestFromSlice(t *testing.T) {
	d := []float64{1, 2, 3, 4, 5, 6}
	m := FromSlice(2, 3, d)
	if m.At(0, 0) != 1 || m.At(0, 2) != 3 || m.At(1, 0) != 4 || m.At(1, 2) != 6 {
		t.Fatalf("FromSlice layout wrong: %v", m)
	}
	m.Set(1, 1, 42)
	if d[4] != 42 {
		t.Fatal("FromSlice must wrap, not copy")
	}
}

func TestFromSlicePanicsOnLenMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromSlice with wrong length did not panic")
		}
	}()
	FromSlice(2, 2, []float64{1, 2, 3})
}

func TestAtSetBounds(t *testing.T) {
	m := New(2, 2)
	for _, idx := range [][2]int{{-1, 0}, {0, -1}, {2, 0}, {0, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("At(%d,%d) did not panic", idx[0], idx[1])
				}
			}()
			m.At(idx[0], idx[1])
		}()
	}
}

func TestRowIsView(t *testing.T) {
	m := New(3, 2)
	r := m.Row(1)
	r[0] = 7
	if m.At(1, 0) != 7 {
		t.Fatal("Row must return a view")
	}
}

func TestCloneIndependent(t *testing.T) {
	m := New(2, 2)
	m.Set(0, 0, 1)
	c := m.Clone()
	c.Set(0, 0, 5)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone must copy data")
	}
}

func TestMulVec(t *testing.T) {
	m := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	x := []float64{1, 0, -1}
	dst := make([]float64, 2)
	m.MulVec(dst, x)
	if dst[0] != -2 || dst[1] != -2 {
		t.Fatalf("MulVec = %v, want [-2 -2]", dst)
	}
}

func TestMulVecT(t *testing.T) {
	m := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	x := []float64{1, -1}
	dst := make([]float64, 3)
	m.MulVecT(dst, x)
	want := []float64{-3, -3, -3}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("MulVecT = %v, want %v", dst, want)
		}
	}
}

func TestMulVecShapePanics(t *testing.T) {
	m := New(2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("MulVec with wrong shapes did not panic")
		}
	}()
	m.MulVec(make([]float64, 2), make([]float64, 2))
}

func TestAddOuterScaled(t *testing.T) {
	m := New(2, 2)
	m.AddOuterScaled([]float64{1, 2}, []float64{3, 4}, 0.5)
	want := [][]float64{{1.5, 2}, {3, 4}}
	for i := range want {
		for j := range want[i] {
			if m.At(i, j) != want[i][j] {
				t.Fatalf("AddOuterScaled(%d,%d) = %v, want %v", i, j, m.At(i, j), want[i][j])
			}
		}
	}
}

func TestLerp(t *testing.T) {
	m := New(1, 2)
	m.Set(0, 0, 0)
	m.Set(0, 1, 10)
	target := New(1, 2)
	target.Set(0, 0, 10)
	target.Set(0, 1, 0)
	m.Lerp(target, 0.1)
	if math.Abs(m.At(0, 0)-1) > 1e-12 || math.Abs(m.At(0, 1)-9) > 1e-12 {
		t.Fatalf("Lerp = %v", m)
	}
}

func TestXavierInitBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := New(50, 50)
	m.XavierInit(rng, 50, 50)
	limit := math.Sqrt(6.0 / 100.0)
	if m.MaxAbs() > limit {
		t.Fatalf("Xavier max %v exceeds limit %v", m.MaxAbs(), limit)
	}
	if m.MaxAbs() == 0 {
		t.Fatal("Xavier produced all zeros")
	}
}

func TestScaleAndZeroAndFill(t *testing.T) {
	m := New(2, 2)
	m.Fill(3)
	m.Scale(2)
	if m.At(1, 1) != 6 {
		t.Fatalf("Fill+Scale = %v", m.At(1, 1))
	}
	m.Zero()
	if m.MaxAbs() != 0 {
		t.Fatal("Zero left nonzero elements")
	}
}

func TestEqual(t *testing.T) {
	a := FromSlice(1, 2, []float64{1, 2})
	b := FromSlice(1, 2, []float64{1, 2 + 1e-10})
	if !a.Equal(b, 1e-9) {
		t.Fatal("Equal within tol failed")
	}
	if a.Equal(b, 1e-12) {
		t.Fatal("Equal outside tol succeeded")
	}
	c := New(2, 1)
	if a.Equal(c, 1) {
		t.Fatal("Equal with shape mismatch succeeded")
	}
}

func TestAddScaled(t *testing.T) {
	a := FromSlice(1, 2, []float64{1, 2})
	b := FromSlice(1, 2, []float64{10, 20})
	a.AddScaled(b, 0.1)
	if a.At(0, 0) != 2 || a.At(0, 1) != 4 {
		t.Fatalf("AddScaled = %v", a)
	}
}

func TestStringDoesNotPanic(t *testing.T) {
	big := New(10, 10)
	if s := big.String(); s == "" {
		t.Fatal("String returned empty")
	}
}

// Property: (Mᵀ)·x via MulVecT matches an explicit transpose multiply.
func TestMulVecTMatchesExplicitTranspose(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := 1 + rng.Intn(8)
		c := 1 + rng.Intn(8)
		m := New(r, c)
		m.Randomize(rng, 1)
		x := make([]float64, r)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		got := make([]float64, c)
		m.MulVecT(got, x)
		// Explicit transpose.
		tr := New(c, r)
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				tr.Set(j, i, m.At(i, j))
			}
		}
		want := make([]float64, c)
		tr.MulVec(want, x)
		for i := range want {
			if math.Abs(want[i]-got[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Dot is symmetric and MulVec of a 1×n matrix equals Dot.
func TestDotConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(16)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i], b[i] = rng.NormFloat64(), rng.NormFloat64()
		}
		if math.Abs(Dot(a, b)-Dot(b, a)) > 1e-12 {
			return false
		}
		m := FromSlice(1, n, a)
		dst := make([]float64, 1)
		m.MulVec(dst, b)
		return math.Abs(dst[0]-Dot(a, b)) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
