package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAxpyTo(t *testing.T) {
	dst := make([]float64, 3)
	AxpyTo(dst, 2, []float64{1, 2, 3}, []float64{10, 10, 10})
	want := []float64{12, 14, 16}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("AxpyTo = %v, want %v", dst, want)
		}
	}
}

func TestAxpyToAliasing(t *testing.T) {
	x := []float64{1, 2}
	AxpyTo(x, 3, x, x) // dst aliases both inputs
	if x[0] != 4 || x[1] != 8 {
		t.Fatalf("aliased AxpyTo = %v", x)
	}
}

func TestAddToScaleToHadamard(t *testing.T) {
	dst := make([]float64, 2)
	AddTo(dst, []float64{1, 2}, []float64{3, 4})
	if dst[0] != 4 || dst[1] != 6 {
		t.Fatalf("AddTo = %v", dst)
	}
	ScaleTo(dst, 0.5, dst)
	if dst[0] != 2 || dst[1] != 3 {
		t.Fatalf("ScaleTo = %v", dst)
	}
	HadamardTo(dst, dst, []float64{2, 2})
	if dst[0] != 4 || dst[1] != 6 {
		t.Fatalf("HadamardTo = %v", dst)
	}
}

func TestSumMeanNorm(t *testing.T) {
	x := []float64{3, 4}
	if Sum(x) != 7 {
		t.Fatalf("Sum = %v", Sum(x))
	}
	if Mean(x) != 3.5 {
		t.Fatalf("Mean = %v", Mean(x))
	}
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if Norm2(x) != 5 {
		t.Fatalf("Norm2 = %v", Norm2(x))
	}
}

func TestClamp(t *testing.T) {
	cases := []struct{ v, lo, hi, want float64 }{
		{-1, 0, 1, 0},
		{0.5, 0, 1, 0.5},
		{2, 0, 1, 1},
		{0, 0, 0, 0},
	}
	for _, c := range cases {
		if got := Clamp(c.v, c.lo, c.hi); got != c.want {
			t.Errorf("Clamp(%v,%v,%v) = %v, want %v", c.v, c.lo, c.hi, got, c.want)
		}
	}
}

func TestArgMax(t *testing.T) {
	if ArgMax(nil) != -1 {
		t.Fatal("ArgMax(nil) != -1")
	}
	if ArgMax([]float64{1, 3, 3, 2}) != 1 {
		t.Fatal("ArgMax ties must pick first")
	}
	if ArgMax([]float64{-5, -1, -9}) != 1 {
		t.Fatal("ArgMax negative values wrong")
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dot mismatch did not panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

// Property: Clamp output is always within bounds and idempotent.
func TestClampProperties(t *testing.T) {
	f := func(v, a, b float64) bool {
		if math.IsNaN(v) || math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		c := Clamp(v, lo, hi)
		return c >= lo && c <= hi && Clamp(c, lo, hi) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Norm2(x)² ≈ Dot(x, x).
func TestNormDotProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(32)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		n2 := Norm2(x)
		return math.Abs(n2*n2-Dot(x, x)) < 1e-9*(1+Dot(x, x))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
