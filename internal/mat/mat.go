// Package mat provides the small dense linear-algebra substrate used by the
// DDPG networks in package rl and by the functional crossbar simulation in
// package sim. Matrices are row-major float64 and sized for the workloads in
// this repository (layers of a few hundred units), so the implementation
// favors clarity and cache-friendly loops over blocking or SIMD tricks.
package mat

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// New returns a zeroed r×c matrix.
func New(r, c int) *Matrix {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("mat: invalid dimensions %dx%d", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// FromSlice wraps data (length r*c, row-major) in a Matrix without copying.
func FromSlice(r, c int, data []float64) *Matrix {
	if len(data) != r*c {
		panic(fmt.Sprintf("mat: FromSlice length %d != %d*%d", len(data), r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: data}
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.Data[i*m.Cols+j]
}

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.Data[i*m.Cols+j] = v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of range %dx%d", i, j, m.Rows, m.Cols))
	}
}

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 {
	if i < 0 || i >= m.Rows {
		panic(fmt.Sprintf("mat: row %d out of range %d", i, m.Rows))
	}
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Zero sets every element to zero.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element to v.
func (m *Matrix) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// Randomize fills m with uniform values in [-scale, scale) drawn from rng.
func (m *Matrix) Randomize(rng *rand.Rand, scale float64) {
	for i := range m.Data {
		m.Data[i] = (rng.Float64()*2 - 1) * scale
	}
}

// XavierInit fills m with the Glorot-uniform distribution for a layer with
// fanIn inputs and fanOut outputs. The DDPG actor/critic use it so training
// starts in the activations' linear regions.
func (m *Matrix) XavierInit(rng *rand.Rand, fanIn, fanOut int) {
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	m.Randomize(rng, limit)
}

// MulVec computes dst = m · x where x has length m.Cols and dst has length
// m.Rows. dst may not alias x.
func (m *Matrix) MulVec(dst, x []float64) {
	if len(x) != m.Cols || len(dst) != m.Rows {
		panic(fmt.Sprintf("mat: MulVec shapes %dx%d · %d -> %d", m.Rows, m.Cols, len(x), len(dst)))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var sum float64
		for j, v := range row {
			sum += v * x[j]
		}
		dst[i] = sum
	}
}

// MulVecT computes dst = mᵀ · x where x has length m.Rows and dst has length
// m.Cols (used for backpropagating gradients without materializing mᵀ).
func (m *Matrix) MulVecT(dst, x []float64) {
	if len(x) != m.Rows || len(dst) != m.Cols {
		panic(fmt.Sprintf("mat: MulVecT shapes %dx%d ᵀ· %d -> %d", m.Rows, m.Cols, len(x), len(dst)))
	}
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		xi := x[i]
		if xi == 0 {
			continue
		}
		for j, v := range row {
			dst[j] += v * xi
		}
	}
}

// AddOuterScaled adds scale · (x ⊗ y) to m, where x has length m.Rows and y
// has length m.Cols. It accumulates weight gradients during backprop.
func (m *Matrix) AddOuterScaled(x, y []float64, scale float64) {
	if len(x) != m.Rows || len(y) != m.Cols {
		panic(fmt.Sprintf("mat: AddOuterScaled shapes %d ⊗ %d vs %dx%d", len(x), len(y), m.Rows, m.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		s := x[i] * scale
		if s == 0 {
			continue
		}
		for j := range row {
			row[j] += s * y[j]
		}
	}
}

// AddScaled adds scale·other to m element-wise.
func (m *Matrix) AddScaled(other *Matrix, scale float64) {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		panic(fmt.Sprintf("mat: AddScaled shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, other.Rows, other.Cols))
	}
	for i, v := range other.Data {
		m.Data[i] += scale * v
	}
}

// Scale multiplies every element by s.
func (m *Matrix) Scale(s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// Lerp moves m toward target: m = (1-tau)·m + tau·target. It implements the
// DDPG soft target-network update.
func (m *Matrix) Lerp(target *Matrix, tau float64) {
	if m.Rows != target.Rows || m.Cols != target.Cols {
		panic(fmt.Sprintf("mat: Lerp shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, target.Rows, target.Cols))
	}
	for i := range m.Data {
		m.Data[i] = (1-tau)*m.Data[i] + tau*target.Data[i]
	}
}

// MaxAbs returns the largest absolute element value, or 0 for an empty matrix.
func (m *Matrix) MaxAbs() float64 {
	var max float64
	for _, v := range m.Data {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// Equal reports whether m and other have identical shape and all elements
// within tol of each other.
func (m *Matrix) Equal(other *Matrix, tol float64) bool {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		return false
	}
	for i, v := range m.Data {
		if math.Abs(v-other.Data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders small matrices for debugging.
func (m *Matrix) String() string {
	s := fmt.Sprintf("Matrix %dx%d [", m.Rows, m.Cols)
	for i := 0; i < m.Rows && i < 4; i++ {
		if i > 0 {
			s += "; "
		}
		for j := 0; j < m.Cols && j < 6; j++ {
			if j > 0 {
				s += " "
			}
			s += fmt.Sprintf("%.4g", m.At(i, j))
		}
		if m.Cols > 6 {
			s += " …"
		}
	}
	if m.Rows > 4 {
		s += "; …"
	}
	return s + "]"
}
