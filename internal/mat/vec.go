package mat

import (
	"fmt"
	"math"
)

// Vector helpers. The rl and sim packages pass activations around as plain
// []float64; these free functions keep that code terse and allocation-aware.

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// AxpyTo computes dst = a·x + y element-wise. dst may alias x or y.
func AxpyTo(dst []float64, a float64, x, y []float64) {
	if len(dst) != len(x) || len(x) != len(y) {
		panic("mat: AxpyTo length mismatch")
	}
	for i := range dst {
		dst[i] = a*x[i] + y[i]
	}
}

// AddTo computes dst = x + y element-wise. dst may alias x or y.
func AddTo(dst, x, y []float64) {
	AxpyTo(dst, 1, x, y)
}

// ScaleTo computes dst = a·x element-wise. dst may alias x.
func ScaleTo(dst []float64, a float64, x []float64) {
	if len(dst) != len(x) {
		panic("mat: ScaleTo length mismatch")
	}
	for i := range dst {
		dst[i] = a * x[i]
	}
}

// HadamardTo computes dst = x ⊙ y element-wise. dst may alias x or y.
func HadamardTo(dst, x, y []float64) {
	if len(dst) != len(x) || len(x) != len(y) {
		panic("mat: HadamardTo length mismatch")
	}
	for i := range dst {
		dst[i] = x[i] * y[i]
	}
}

// Sum returns the sum of the elements of x.
func Sum(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of x, or 0 for an empty slice.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	return Sum(x) / float64(len(x))
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// Clamp returns v limited to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ArgMax returns the index of the largest element of x (first on ties), or
// -1 for an empty slice.
func ArgMax(x []float64) int {
	if len(x) == 0 {
		return -1
	}
	best := 0
	for i, v := range x {
		if v > x[best] {
			best = i
		}
	}
	return best
}
