module autohet

go 1.22
